//! The DCC chaos harness: deterministic fault campaigns against the full
//! schedule → crash → repair → rejoin → reconcile loop.
//!
//! This is the protocol-specific half of the deterministic
//! simulation-testing layer (the generic half — seed triples, fault plans,
//! traces, the ddmin shrinker — lives in [`confine_netsim::chaos`]). A
//! [`ChaosRunner`] expands a [`SeedTriple`] into a complete adversarial
//! run:
//!
//! 1. the **topology seed** builds a random UDG scenario with a certified
//!    boundary ring;
//! 2. the **schedule seed** drives every message-level random choice: the
//!    initial DCC-D schedule, then each repair/rejoin/reconcile pass;
//! 3. the **fault seed** expands into a [`ChaosPlan`] of crash, recover
//!    and partition events — plus, with [`ChaosOptions::churn`], move and
//!    radio-degrade events that mutate the topology itself — applied in
//!    order.
//!
//! After every event the harness evaluates the invariant oracles —
//! `τ`-partitionability of the certified boundary
//! ([`verify_criterion`]), VPT-fixpoint convergence
//! ([`is_vpt_fixpoint`]) — and records the verdicts in a replayable
//! [`Trace`]. Both are **differential**: a random deployment is not
//! guaranteed to certify the criterion even fully awake, and a crash may
//! destroy coverage no protocol could rebuild, so what the repair layer
//! owes is *no regression against what is achievable* — a verdict only
//! fails if the property held at the post-schedule baseline, still holds
//! with every currently-alive node awake (the criterion is monotone in
//! the active set, so that is the best case), and the maintained set
//! breaks it anyway. While a partition is open, coverage degradation is
//! expected, so verdicts are informational; everywhere else they are
//! enforced. At quiescence a churn probe reruns reconciliation around
//! every node that ever changed state and reports (informationally)
//! whether it was a no-op.
//!
//! The same triple replays **bitwise-identically**: equal [`Trace`]s, equal
//! digests, equal final active sets — across thread counts too, since the
//! VPT engine's parallel evaluation is order-invariant. On an enforced
//! violation, [`ChaosRunner::shrink`] minimizes the fault script with
//! [`shrink_plan`] and packages the one-line repro command.

use std::collections::{BTreeMap, BTreeSet};

use confine_deploy::geometry::Point;
use confine_deploy::mobility::churn_graph;
use confine_deploy::scenario::random_udg_scenario;
use confine_deploy::{CommModel, Scenario};
use confine_graph::{traverse, Graph, NodeId};
use confine_model::EnvOp;
use confine_netsim::chaos::{
    shrink_plan, ChaosEvent, ChaosPlan, SeedTriple, ShrinkResult, Trace, TraceEvent,
};
use confine_netsim::faults::FaultPlan;
use confine_netsim::SimError;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dcc::{Dcc, RepairRunner};
use crate::distributed::DistributedStats;
use crate::repair::RejoinPolicy;
use crate::schedule::is_vpt_fixpoint;
use crate::verify::{verify_criterion, CriterionOutcome};
use crate::vpt_engine::EngineConfig;

/// Configuration of a chaos campaign (shared by every seed triple).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Confine size `τ`.
    pub tau: usize,
    /// Nodes per random scenario.
    pub nodes: usize,
    /// Target average degree of the random UDG.
    pub degree: f64,
    /// Fault events per randomly generated plan.
    pub events: usize,
    /// How crash-recovered nodes re-enter the schedule.
    pub rejoin: RejoinPolicy,
    /// VPT engine configuration (worker threads, verdict cache) applied to
    /// every schedule and repair run of the campaign.
    pub engine: EngineConfig,
    /// Script churn events too: randomly generated plans draw from the full
    /// event alphabet including [`ChaosEvent::Move`] and
    /// [`ChaosEvent::Degrade`], so the topology itself mutates mid-run.
    pub churn: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            tau: 4,
            // Sized so the certified boundary band leaves a real interior:
            // smaller deployments are boundary-dominated and the schedule
            // rightly sleeps every internal node, leaving nothing to crash.
            nodes: 120,
            degree: 12.0,
            events: 6,
            rejoin: RejoinPolicy::ReVerify,
            engine: EngineConfig::builder().threads(1).build(),
            churn: false,
        }
    }
}

/// The result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed triple that (re)produces this run.
    pub triple: SeedTriple,
    /// The fault script that was applied.
    pub plan: ChaosPlan,
    /// The replayable event trace, oracle verdicts included.
    pub trace: Trace,
    /// The final active set, in id order.
    pub active: Vec<NodeId>,
    /// Aggregate protocol cost across the schedule and every fault
    /// reaction.
    pub stats: DistributedStats,
}

impl ChaosReport {
    /// Did any *enforced* oracle fail?
    pub fn failed(&self) -> bool {
        !self.trace.violations().is_empty()
    }
}

/// A minimized counterexample produced by [`ChaosRunner::shrink`].
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The 1-minimal failing plan and the shrinker's test count.
    pub result: ShrinkResult,
    /// The replay of the minimal plan (violations included).
    pub report: ChaosReport,
    /// Human-readable repro: the CLI command plus the minimal script.
    pub repro: String,
}

/// A concrete repro lowered from an abstract model-checker
/// counterexample by [`ChaosRunner::concretize`].
#[derive(Debug, Clone)]
pub struct Lowering {
    /// The seed triple the lowered script replays under.
    pub triple: SeedTriple,
    /// The concrete fault script (crashes/recoveries on real node ids).
    pub plan: ChaosPlan,
    /// The failing replay (enforced-oracle violations in its trace).
    pub report: ChaosReport,
    /// Copy-pasteable `chaos --plan` command that reproduces the failure.
    pub command: String,
}

/// Executes seeded chaos campaigns; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct ChaosRunner {
    opts: ChaosOptions,
}

impl ChaosRunner {
    /// Creates a runner for the given campaign configuration.
    pub fn new(opts: ChaosOptions) -> Self {
        ChaosRunner { opts }
    }

    /// The campaign configuration.
    pub fn options(&self) -> &ChaosOptions {
        &self.opts
    }

    /// The scenario a triple's topology seed expands into (exposed so
    /// callers can inspect or render the topology of a repro).
    pub fn scenario(&self, triple: SeedTriple) -> Scenario {
        let mut rng = StdRng::seed_from_u64(triple.topology);
        random_udg_scenario(self.opts.nodes, 1.0, self.opts.degree, &mut rng)
    }

    /// Runs the triple with its derived random fault plan.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] of the underlying drivers (these mean
    /// the *simulation* could not run, not that an oracle failed — oracle
    /// verdicts live in the returned trace).
    pub fn run(&self, triple: SeedTriple) -> Result<ChaosReport, SimError> {
        self.execute(triple, None)
    }

    /// Replays the triple under an explicit fault plan (the shrinker's
    /// probe path; also useful for hand-crafted scripts).
    pub fn run_plan(&self, triple: SeedTriple, plan: &ChaosPlan) -> Result<ChaosReport, SimError> {
        self.execute(triple, Some(plan))
    }

    /// Runs the triple; on an enforced-oracle violation, ddmin-minimizes
    /// the fault script and returns the packaged counterexample. `None`
    /// means the run was clean.
    pub fn shrink(&self, triple: SeedTriple) -> Result<Option<Counterexample>, SimError> {
        let report = self.run(triple)?;
        if !report.failed() {
            return Ok(None);
        }
        let mut oracle = |candidate: &ChaosPlan| {
            self.run_plan(triple, candidate)
                .map(|r| r.failed())
                .unwrap_or(false)
        };
        let result = shrink_plan(&report.plan, &mut oracle);
        let minimal = self.run_plan(triple, &result.plan)?;
        let repro = format!(
            "{}{}\nminimal fault script ({} events, {} candidate runs):\n{}",
            triple.repro_command(),
            self.cli_flags(),
            result.plan.len(),
            result.tests_run,
            result.plan.describe()
        );
        Ok(Some(Counterexample {
            result,
            report: minimal,
            repro,
        }))
    }

    /// Lowers an abstract model-checker counterexample (an [`EnvOp`]
    /// crash/recover skeleton over small model node ids) into a concrete
    /// failing chaos repro.
    ///
    /// The search walks derived seed triples; for each, it runs the
    /// fault-free baseline to learn the scheduled active set, then tries
    /// assignments of model ids to concrete active nodes guided by the
    /// abstract failure mechanism: the crash-only victims (whose repair
    /// must wake a substitute) anchor on active nodes with *sleeping
    /// neighbours*, and the rejoiner is drawn from the actives within two
    /// hops of the anchor, so the substitute lands inside the rejoiner's
    /// trust neighbourhood. The first assignment whose replay trips an
    /// enforced oracle is returned with its copy-pasteable `chaos --plan`
    /// command; `Ok(None)` means no assignment failed within the budget —
    /// evidence (not proof) that the abstract violation does not refine
    /// at this configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`]s of the underlying drivers.
    pub fn concretize(
        &self,
        ops: &[EnvOp],
        base_seed: u64,
        seed_tries: u64,
    ) -> Result<Option<Lowering>, SimError> {
        // Distinct model ids, in order of first appearance; the ids that
        // rejoin are assigned last (their partners anchor the search).
        let mut ids: Vec<usize> = Vec::new();
        for op in ops {
            let id = match *op {
                EnvOp::Crash(i) | EnvOp::Recover(i) => i,
            };
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        let rejoiners: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&i| {
                ops.iter()
                    .any(|op| matches!(op, EnvOp::Recover(j) if *j == i))
            })
            .collect();
        let crash_only: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|i| !rejoiners.contains(i))
            .collect();
        const ANCHORS_PER_SEED: usize = 8;
        const PARTNERS_PER_ANCHOR: usize = 3;
        for index in 0..seed_tries {
            let triple = SeedTriple::derived(base_seed, index);
            let scenario = self.scenario(triple);
            let baseline = self.run_plan(triple, &ChaosPlan::new())?;
            if baseline.active.len() == scenario.graph.node_count() {
                // Everyone awake: no sleepers to wake, no substitutes to
                // demote — the regression cannot fire here.
                continue;
            }
            // Anchors: active nodes whose crash has sleeping neighbours to
            // wake, most first — substitutes are what rejoin demotes.
            let mut anchors: Vec<(usize, NodeId)> = baseline
                .active
                .iter()
                .map(|&v| {
                    let sleeping = scenario
                        .graph
                        .neighbors(v)
                        .filter(|n| !baseline.active.contains(n))
                        .count();
                    (sleeping, v)
                })
                .filter(|&(sleeping, _)| sleeping > 0)
                .collect();
            anchors.sort_by_key(|&(sleeping, v)| (usize::MAX - sleeping, v));
            for &(_, anchor) in anchors.iter().take(ANCHORS_PER_SEED) {
                // Partners: actives within two hops, id order (the trust
                // ball has radius ⌈τ/2⌉+1 ≥ 3, so two hops keeps the
                // anchor's substitutes inside the rejoiner's demotion
                // neighbourhood).
                let near: Vec<NodeId> = traverse::k_hop_neighbors(&scenario.graph, anchor, 2)
                    .into_iter()
                    .filter(|v| *v != anchor && baseline.active.contains(v))
                    .collect();
                for &partner in near.iter().take(PARTNERS_PER_ANCHOR) {
                    // The anchor takes the first crash-only id, the
                    // partner the first rejoiner; any further ids map to
                    // the remaining nearby actives.
                    let mut assignment: Vec<(usize, NodeId)> = Vec::new();
                    if let Some(&c) = crash_only.first() {
                        assignment.push((c, anchor));
                        if let Some(&r) = rejoiners.first() {
                            assignment.push((r, partner));
                        }
                    } else if let Some(&r) = rejoiners.first() {
                        assignment.push((r, anchor));
                    }
                    let mut spare = near
                        .iter()
                        .filter(|v| **v != partner)
                        .chain(baseline.active.iter())
                        .filter(|v| **v != anchor && **v != partner)
                        .copied();
                    for &id in ids.iter() {
                        if assignment.iter().any(|(i, _)| *i == id) {
                            continue;
                        }
                        let Some(node) = spare.next() else { break };
                        assignment.push((id, node));
                    }
                    if assignment.len() != ids.len() {
                        continue; // not enough distinct actives
                    }
                    let map = |model_id: usize| {
                        assignment
                            .iter()
                            .find(|(i, _)| *i == model_id)
                            .map(|&(_, n)| n)
                    };
                    let mut plan = ChaosPlan::new();
                    for op in ops {
                        match *op {
                            EnvOp::Crash(i) => {
                                let Some(node) = map(i) else { continue };
                                plan.events.push(ChaosEvent::Crash { node });
                            }
                            EnvOp::Recover(i) => {
                                let Some(node) = map(i) else { continue };
                                plan.events.push(ChaosEvent::Recover { node });
                            }
                        }
                    }
                    let report = self.run_plan(triple, &plan)?;
                    if report.failed() {
                        let script = plan.render_script().unwrap_or_default();
                        let command = format!(
                            "{}{} --plan \"{script}\"",
                            triple.repro_command(),
                            self.cli_flags()
                        );
                        return Ok(Some(Lowering {
                            triple,
                            plan,
                            report,
                            command,
                        }));
                    }
                }
            }
        }
        Ok(None)
    }

    /// The non-default campaign options as CLI flags, appended to a
    /// triple's repro command so the printed line reproduces verbatim.
    fn cli_flags(&self) -> String {
        let defaults = ChaosOptions::default();
        let mut flags = String::new();
        if self.opts.tau != defaults.tau {
            flags.push_str(&format!(" --tau {}", self.opts.tau));
        }
        if self.opts.nodes != defaults.nodes {
            flags.push_str(&format!(" --nodes {}", self.opts.nodes));
        }
        if self.opts.degree != defaults.degree {
            flags.push_str(&format!(" --degree {}", self.opts.degree));
        }
        if self.opts.events != defaults.events {
            flags.push_str(&format!(" --events {}", self.opts.events));
        }
        if self.opts.rejoin == RejoinPolicy::TrustSnapshot {
            flags.push_str(" --rejoin trust-snapshot");
        }
        if self.opts.churn {
            flags.push_str(" --churn");
        }
        flags
    }

    fn execute(
        &self,
        triple: SeedTriple,
        fixed: Option<&ChaosPlan>,
    ) -> Result<ChaosReport, SimError> {
        let mut scenario = self.scenario(triple);
        // Boundary flags never change (the certified ring is pinned); the
        // graph and positions do, under Move/Degrade events.
        let boundary = scenario.boundary.clone();
        let mut factor: Vec<u8> = vec![100; scenario.graph.node_count()];
        let mut rng = StdRng::seed_from_u64(triple.schedule);
        let mut trace = Trace::new();
        let mut total = DistributedStats::default();

        // Initial schedule (consumes the head of the schedule-seed stream).
        let builder = Dcc::builder(self.opts.tau).engine_config(self.opts.engine);
        let (set, sched_stats) =
            builder
                .distributed()?
                .run(&scenario.graph, &boundary, &mut rng)?;
        total.merge(&sched_stats);
        trace.push(TraceEvent::Phase {
            step: 0,
            label: "schedule".into(),
            rounds: sched_stats.comm_rounds,
            messages: sched_stats.total_messages(),
            dropped: sched_stats.dropped,
        });
        let mut active = set.active;

        // Post-schedule baseline: what the fault reactions must not
        // regress. The criterion is not guaranteed on a random deployment
        // (informational here); the scheduler's fixpoint contract is
        // unconditional, so that one is enforced even at baseline.
        let baseline = Baseline {
            partitionable: self.partitionable(&scenario, &active),
            fixpoint: is_vpt_fixpoint(&scenario.graph, &active, &boundary, self.opts.tau),
        };
        trace.push(TraceEvent::Oracle {
            step: 0,
            name: "partitionable".into(),
            pass: baseline.partitionable,
            enforced: false,
        });
        trace.push(TraceEvent::Oracle {
            step: 0,
            name: "fixpoint".into(),
            pass: baseline.fixpoint,
            enforced: true,
        });

        let plan = match fixed {
            Some(p) => p.clone(),
            None => {
                let victims: Vec<NodeId> = active
                    .iter()
                    .copied()
                    .filter(|v| !boundary[v.index()])
                    .collect();
                let candidates = split_candidates(&scenario.graph, &victims);
                if self.opts.churn {
                    ChaosPlan::random_churn(&victims, &candidates, self.opts.events, triple.faults)
                } else {
                    ChaosPlan::random(&victims, &candidates, self.opts.events, triple.faults)
                }
            }
        };

        // node → the active set it saw when it crashed (its rejoin snapshot).
        let mut down: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        // Open partition: (side, plan step at which it heals).
        let mut split: Option<(BTreeSet<NodeId>, usize)> = None;
        // Everything that ever changed membership (the churn-probe seeds),
        // plus, while a split is open, the dirty seeds of its eventual heal.
        let mut changed: BTreeSet<NodeId> = BTreeSet::new();
        let mut dirty_since_split: BTreeSet<NodeId> = BTreeSet::new();

        for (step, event) in plan.events.iter().enumerate() {
            match event {
                ChaosEvent::Crash { node } => {
                    // Sleeping or already-down victims script nothing
                    // (keeps plans closed under the shrinker's deletions).
                    if down.contains_key(node) || !active.contains(node) {
                        continue;
                    }
                    trace.push(TraceEvent::Crash { step, node: *node });
                    down.insert(*node, active.clone());
                    changed.insert(*node);
                    dirty_since_split.insert(*node);
                    let mut runner =
                        self.repair_runner(split.as_ref().map(|(s, _)| s), &down, Some(*node))?;
                    let outcome =
                        runner.repair(&scenario.graph, &boundary, &active, *node, &mut rng)?;
                    total.merge(&outcome.stats);
                    trace.push(TraceEvent::Phase {
                        step,
                        label: "repair".into(),
                        rounds: outcome.stats.comm_rounds,
                        messages: outcome.stats.total_messages(),
                        dropped: outcome.stats.dropped,
                    });
                    record_membership(
                        step,
                        &active,
                        &outcome.set.active,
                        &mut changed,
                        &mut dirty_since_split,
                        &mut trace,
                    );
                    active = outcome.set.active;
                }
                ChaosEvent::Recover { node } => {
                    let Some(snapshot) = down.remove(node) else {
                        continue; // inert without a prior crash
                    };
                    trace.push(TraceEvent::Recover { step, node: *node });
                    let mut runner =
                        self.repair_runner(split.as_ref().map(|(s, _)| s), &down, None)?;
                    let outcome = runner.rejoin(
                        &scenario.graph,
                        &boundary,
                        &active,
                        *node,
                        &snapshot,
                        self.opts.rejoin,
                        &mut rng,
                    )?;
                    total.merge(&outcome.stats);
                    trace.push(TraceEvent::Phase {
                        step,
                        label: "rejoin".into(),
                        rounds: outcome.stats.comm_rounds,
                        messages: outcome.stats.total_messages(),
                        dropped: outcome.stats.dropped,
                    });
                    record_membership(
                        step,
                        &active,
                        &outcome.set.active,
                        &mut changed,
                        &mut dirty_since_split,
                        &mut trace,
                    );
                    active = outcome.set.active;
                }
                ChaosEvent::Split { side, heal_after } => {
                    if split.is_some() {
                        continue; // one partition at a time
                    }
                    trace.push(TraceEvent::Split {
                        step,
                        side: side.clone(),
                    });
                    let side_set: BTreeSet<NodeId> = side.iter().copied().collect();
                    // The heal must reconcile every node whose verdicts the
                    // split may have staled: seed with the cut endpoints.
                    for (_, a, b) in scenario.graph.edges() {
                        if side_set.contains(&a) != side_set.contains(&b) {
                            dirty_since_split.insert(a);
                            dirty_since_split.insert(b);
                        }
                    }
                    split = Some((side_set, step + heal_after));
                }
                ChaosEvent::Move {
                    node,
                    dx_mils,
                    dy_mils,
                } => {
                    // The certified boundary ring is pinned: moving a ring
                    // node would invalidate the outer walk every oracle
                    // depends on. Inert, so plans stay shrinker-closed.
                    if boundary[node.index()] {
                        continue;
                    }
                    let rc = scenario.rc;
                    let old_p = scenario.positions[node.index()];
                    let new_p = Point::new(
                        (old_p.x + f64::from(*dx_mils) / 1000.0 * rc)
                            .clamp(scenario.region.min.x, scenario.region.max.x),
                        (old_p.y + f64::from(*dy_mils) / 1000.0 * rc)
                            .clamp(scenario.region.min.y, scenario.region.max.y),
                    );
                    if new_p.distance_sq(old_p) == 0.0 {
                        continue; // clamped into a no-op
                    }
                    trace.push(TraceEvent::Move { step, node: *node });
                    scenario.positions[node.index()] = new_p;
                    let dirty = retopologize(&mut scenario, &factor, *node, self.opts.tau);
                    changed.insert(*node);
                    changed.extend(dirty.iter().copied());
                    dirty_since_split.extend(dirty);
                    if split.is_none() {
                        self.settle(
                            &scenario,
                            &mut active,
                            &mut dirty_since_split,
                            &down,
                            step,
                            &mut rng,
                            &mut trace,
                            &mut total,
                            &mut changed,
                        )?;
                    }
                }
                ChaosEvent::Degrade { node, factor_pct } => {
                    if boundary[node.index()] {
                        continue; // as for Move: the ring's links are sacred
                    }
                    let f = (*factor_pct).min(100);
                    if factor[node.index()] == f {
                        continue; // no change — inert
                    }
                    trace.push(TraceEvent::Degrade {
                        step,
                        node: *node,
                        factor_pct: f,
                    });
                    factor[node.index()] = f;
                    let dirty = retopologize(&mut scenario, &factor, *node, self.opts.tau);
                    changed.insert(*node);
                    changed.extend(dirty.iter().copied());
                    dirty_since_split.extend(dirty);
                    if split.is_none() {
                        self.settle(
                            &scenario,
                            &mut active,
                            &mut dirty_since_split,
                            &down,
                            step,
                            &mut rng,
                            &mut trace,
                            &mut total,
                            &mut changed,
                        )?;
                    }
                }
            }

            if let Some((side, heal_at)) = split.take() {
                if step >= heal_at {
                    self.heal(
                        &scenario,
                        &mut active,
                        &mut dirty_since_split,
                        &down,
                        step,
                        &mut rng,
                        &mut trace,
                        &mut total,
                        &mut changed,
                    )?;
                } else {
                    split = Some((side, heal_at));
                }
            }

            // During an open split, degradation is expected: verdicts are
            // recorded but not enforced.
            let enforced = split.is_none();
            self.check_oracles(
                &scenario, &active, baseline, &down, enforced, step, &mut trace,
            );
        }

        // Plan exhausted: heal any partition still open, then re-check.
        if split.take().is_some() {
            let step = plan.len();
            self.heal(
                &scenario,
                &mut active,
                &mut dirty_since_split,
                &down,
                step,
                &mut rng,
                &mut trace,
                &mut total,
                &mut changed,
            )?;
            self.check_oracles(&scenario, &active, baseline, &down, true, step, &mut trace);
        }

        // Quiescence churn probe: reconciling around everything that ever
        // changed must be a no-op. Informational — transient wake/re-prune
        // churn can legitimately settle on an equivalent but different
        // fixpoint; the probe flags it for inspection without failing the
        // run.
        if !changed.is_empty() {
            // As in `heal`: dead nodes can't flood, their neighbours can.
            let mut extra: Vec<NodeId> = Vec::new();
            for &n in down.keys() {
                extra.extend(
                    scenario
                        .graph
                        .neighbors(n)
                        .filter(|u| !down.contains_key(u)),
                );
            }
            changed.extend(extra);
            let dirty: Vec<NodeId> = changed.iter().copied().collect();
            let mut runner = self.repair_runner(None, &down, None)?;
            let probe = runner.reconcile(&scenario.graph, &boundary, &active, &dirty, &mut rng)?;
            total.merge(&probe.stats);
            trace.push(TraceEvent::Oracle {
                step: plan.len(),
                name: "churn".into(),
                pass: probe.set.active == active,
                enforced: false,
            });
        }

        trace.push(TraceEvent::Final {
            active: active.clone(),
        });
        Ok(ChaosReport {
            triple,
            plan,
            trace,
            active,
            stats: total,
        })
    }

    /// Heals the open partition: reconciles around the dirty seeds
    /// accumulated while it was open.
    #[allow(clippy::too_many_arguments)]
    fn heal(
        &self,
        scenario: &Scenario,
        active: &mut Vec<NodeId>,
        dirty_since_split: &mut BTreeSet<NodeId>,
        down: &BTreeMap<NodeId, Vec<NodeId>>,
        step: usize,
        rng: &mut StdRng,
        trace: &mut Trace,
        total: &mut DistributedStats,
        changed: &mut BTreeSet<NodeId>,
    ) -> Result<(), SimError> {
        trace.push(TraceEvent::Heal { step });
        self.settle(
            scenario,
            active,
            dirty_since_split,
            down,
            step,
            rng,
            trace,
            total,
            changed,
        )
    }

    /// Reconciles the schedule around the accumulated dirty seeds (the
    /// shared tail of a partition heal and of an in-place topology change).
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        scenario: &Scenario,
        active: &mut Vec<NodeId>,
        dirty_since_split: &mut BTreeSet<NodeId>,
        down: &BTreeMap<NodeId, Vec<NodeId>>,
        step: usize,
        rng: &mut StdRng,
        trace: &mut Trace,
        total: &mut DistributedStats,
        changed: &mut BTreeSet<NodeId>,
    ) -> Result<(), SimError> {
        // A still-down node is a dead flood source: reconciliation around it
        // must be seeded from its alive neighbours instead.
        for &n in down.keys() {
            dirty_since_split.extend(
                scenario
                    .graph
                    .neighbors(n)
                    .filter(|u| !down.contains_key(u)),
            );
        }
        let dirty: Vec<NodeId> = dirty_since_split.iter().copied().collect();
        dirty_since_split.clear();
        let mut runner = self.repair_runner(None, down, None)?;
        let outcome = runner.reconcile(&scenario.graph, &scenario.boundary, active, &dirty, rng)?;
        total.merge(&outcome.stats);
        trace.push(TraceEvent::Phase {
            step,
            label: "reconcile".into(),
            rounds: outcome.stats.comm_rounds,
            messages: outcome.stats.total_messages(),
            dropped: outcome.stats.dropped,
        });
        record_membership(
            step,
            active,
            &outcome.set.active,
            changed,
            dirty_since_split,
            trace,
        );
        *active = outcome.set.active;
        Ok(())
    }

    /// A repair runner under the current environment: an open partition and
    /// every currently-down node become the ambient fault plan of each
    /// embedded protocol phase (down nodes must neither hear wake floods
    /// nor answer discovery).
    fn repair_runner(
        &self,
        split: Option<&BTreeSet<NodeId>>,
        down: &BTreeMap<NodeId, Vec<NodeId>>,
        exclude: Option<NodeId>,
    ) -> Result<RepairRunner, SimError> {
        let mut builder = Dcc::builder(self.opts.tau).engine_config(self.opts.engine);
        let mut plan = FaultPlan::new();
        if let Some(side) = split {
            let side_vec: Vec<NodeId> = side.iter().copied().collect();
            plan = plan.partition(&side_vec, 0, usize::MAX);
        }
        for &n in down.keys() {
            // The node an operation is itself about (the crash victim, the
            // rejoiner) is the operation's business, not the environment's.
            if Some(n) != exclude {
                plan = plan.crash(n, 0);
            }
        }
        if !plan.is_empty() {
            builder = builder.fault_plan(plan);
        }
        builder.repair()
    }

    /// τ-partitionability of the certified boundary (Proposition 2). A
    /// scenario without a certified walk makes the oracle vacuous.
    fn partitionable(&self, scenario: &Scenario, active: &[NodeId]) -> bool {
        !matches!(
            verify_criterion(scenario, active, self.opts.tau),
            CriterionOutcome::Violated
        )
    }

    /// Evaluates the invariant oracles in differential form against the
    /// post-schedule baseline and the currently-achievable best case, and
    /// records their verdicts.
    #[allow(clippy::too_many_arguments)]
    fn check_oracles(
        &self,
        scenario: &Scenario,
        active: &[NodeId],
        baseline: Baseline,
        down: &BTreeMap<NodeId, Vec<NodeId>>,
        enforced: bool,
        step: usize,
        trace: &mut Trace,
    ) {
        let partitionable = self.partitionable(scenario, active);
        // Best case under the current down-set: every alive node awake.
        // The criterion is monotone in the active set, so if this fails no
        // repair strategy could have preserved it — the verdict is vacuous.
        let alive: Vec<NodeId> = scenario
            .graph
            .nodes()
            .filter(|v| !down.contains_key(v))
            .collect();
        let achievable = self.partitionable(scenario, &alive);
        trace.push(TraceEvent::Oracle {
            step,
            name: "partitionable".into(),
            pass: partitionable || !(baseline.partitionable && achievable),
            enforced,
        });
        // Repair convergence: the active set is again a global VPT fixpoint.
        let fixpoint = is_vpt_fixpoint(&scenario.graph, active, &scenario.boundary, self.opts.tau);
        trace.push(TraceEvent::Oracle {
            step,
            name: "fixpoint".into(),
            pass: fixpoint || !baseline.fixpoint,
            enforced,
        });
    }
}

/// The post-schedule oracle verdicts the rest of a run is held against.
#[derive(Debug, Clone, Copy)]
struct Baseline {
    partitionable: bool,
    fixpoint: bool,
}

/// Geometric split candidates: radius-2 BFS balls around a few spread-out
/// victims — realistic one-side partitions (arbitrary node subsets are
/// not).
fn split_candidates(graph: &Graph, victims: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    if victims.is_empty() {
        return out;
    }
    let picks = [0, victims.len() / 2, victims.len() - 1];
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    for &i in &picks {
        let center = victims[i];
        if !seen.insert(center) {
            continue;
        }
        let mut side = traverse::k_hop_neighbors(graph, center, 2);
        side.push(center);
        side.sort_unstable();
        // A split must actually cut the network in two.
        if !side.is_empty() && side.len() < graph.node_count() {
            out.push(side);
        }
    }
    out
}

/// Rebuilds the scenario graph from its current positions and per-node
/// degradation factors, returning the verdict-staleness seeds of the change:
/// the endpoints of every added edge, plus — for removed edges, whose
/// influence radius lives in the *old* metric — the old-graph `k`-balls of
/// the removed endpoints. Every node whose `k`-neighbourhood gained a member
/// lies within `k` new-graph hops of an added endpoint (so the reconcile
/// wake flood reaches it from the seed), and every node that lost one is
/// itself a seed.
fn retopologize(scenario: &mut Scenario, factor: &[u8], seed: NodeId, tau: usize) -> Vec<NodeId> {
    let new_graph = churn_graph(
        &scenario.positions,
        CommModel::Udg { rc: scenario.rc },
        factor,
        0,
    );
    let k = crate::vpt::neighborhood_radius(tau);
    let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
    dirty.insert(seed);
    for (_, a, b) in scenario.graph.edges() {
        if !new_graph.has_edge(a, b) {
            dirty.insert(a);
            dirty.insert(b);
            dirty.extend(traverse::k_hop_neighbors(&scenario.graph, a, k));
            dirty.extend(traverse::k_hop_neighbors(&scenario.graph, b, k));
        }
    }
    for (_, a, b) in new_graph.edges() {
        if !scenario.graph.has_edge(a, b) {
            dirty.insert(a);
            dirty.insert(b);
        }
    }
    scenario.graph = new_graph;
    dirty.into_iter().collect()
}

/// Records a membership delta (if any) and folds it into the dirty sets.
fn record_membership(
    step: usize,
    before: &[NodeId],
    after: &[NodeId],
    changed: &mut BTreeSet<NodeId>,
    dirty_since_split: &mut BTreeSet<NodeId>,
    trace: &mut Trace,
) {
    let b: BTreeSet<NodeId> = before.iter().copied().collect();
    let a: BTreeSet<NodeId> = after.iter().copied().collect();
    let woken: Vec<NodeId> = a.difference(&b).copied().collect();
    let slept: Vec<NodeId> = b.difference(&a).copied().collect();
    if woken.is_empty() && slept.is_empty() {
        return;
    }
    changed.extend(woken.iter().copied());
    changed.extend(slept.iter().copied());
    dirty_since_split.extend(woken.iter().copied());
    dirty_since_split.extend(slept.iter().copied());
    trace.push(TraceEvent::Membership { step, woken, slept });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ChaosOptions {
        ChaosOptions {
            nodes: 40,
            degree: 9.0,
            events: 8,
            ..ChaosOptions::default()
        }
    }

    #[test]
    #[ignore = "soak: ~40 full campaigns; run with --ignored"]
    fn soak_reverify_stays_clean_and_trust_snapshot_fails_sometimes() {
        let sound = ChaosRunner::new(quick_opts());
        let buggy = ChaosRunner::new(ChaosOptions {
            rejoin: RejoinPolicy::TrustSnapshot,
            ..quick_opts()
        });
        let mut clean_failures = Vec::new();
        let mut buggy_failures = 0usize;
        for i in 0..40 {
            let triple = SeedTriple::derived(0xA5, i);
            let report = sound.run(triple).unwrap();
            if report.failed() {
                clean_failures.push((triple, report.trace.render()));
            }
            if buggy.run(triple).unwrap().failed() {
                buggy_failures += 1;
            }
        }
        assert!(
            clean_failures.is_empty(),
            "ReVerify must stay clean: {} failures, first:\n{}",
            clean_failures.len(),
            clean_failures[0].1
        );
        assert!(
            buggy_failures > 0,
            "the TrustSnapshot regression must be observable in 40 seeds"
        );
        println!("trust-snapshot failure rate: {buggy_failures}/40");
    }

    #[test]
    fn clean_runs_pass_the_enforced_oracles() {
        let runner = ChaosRunner::new(quick_opts());
        for i in 0..3 {
            let triple = SeedTriple::derived(11, i);
            let report = runner.run(triple).unwrap();
            assert!(
                !report.failed(),
                "seed {triple} must run clean under ReVerify:\n{}",
                report.trace.render()
            );
            assert!(!report.active.is_empty());
            assert!(report.stats.total_messages() > 0);
        }
    }

    #[test]
    fn replay_is_bitwise_identical() {
        let runner = ChaosRunner::new(quick_opts());
        let triple = SeedTriple::derived(23, 1);
        let a = runner.run(triple).unwrap();
        let b = runner.run(triple).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.active, b.active);
        // A different topology seed takes a different path.
        let c = runner
            .run(SeedTriple {
                topology: triple.topology ^ 1,
                ..triple
            })
            .unwrap();
        assert_ne!(a.trace.digest(), c.trace.digest());
    }

    fn has_churn_event(plan: &ChaosPlan) -> bool {
        plan.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::Move { .. } | ChaosEvent::Degrade { .. }))
    }

    #[test]
    fn churn_plans_mutate_topology_and_replay_identically() {
        // Default sizing: quick_opts deployments can be boundary-dominated,
        // leaving no internal actives and hence no churn victims.
        let runner = ChaosRunner::new(ChaosOptions {
            churn: true,
            ..ChaosOptions::default()
        });
        // Scan for a seed whose plan actually scripts a move/degrade
        // (degenerate deployments produce empty victim sets under any RNG).
        let triple = (0..16)
            .map(|i| SeedTriple::derived(31, i))
            .find(|&t| {
                runner
                    .run(t)
                    .map(|r| has_churn_event(&r.plan))
                    .unwrap_or(false)
            })
            .expect("a churn-scripting seed within 16 tries");
        let a = runner.run(triple).unwrap();
        let b = runner.run(triple).unwrap();
        assert_eq!(a.trace, b.trace, "churn replay must be bitwise identical");
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.active, b.active);
        assert!(
            !a.failed(),
            "seed {triple} must stay clean under ReVerify churn:\n{}",
            a.trace.render()
        );
    }

    #[test]
    fn explicit_move_and_degrade_scripts_apply_and_restore() {
        let runner = ChaosRunner::new(ChaosOptions::default());
        // Discover a seed whose fault-free schedule keeps an internal node
        // active (the churn victim).
        let (triple, victim) = (0..16)
            .filter_map(|i| {
                let t = SeedTriple::derived(37, i);
                let clean = runner.run_plan(t, &ChaosPlan::new()).ok()?;
                let scen = runner.scenario(t);
                let v = clean
                    .active
                    .iter()
                    .copied()
                    .find(|v| !scen.boundary[v.index()])?;
                Some((t, v))
            })
            .next()
            .expect("a seed with an internal active node within 16 tries");
        let scenario = runner.scenario(triple);
        let mut plan = ChaosPlan::new();
        plan.events.push(ChaosEvent::Degrade {
            node: victim,
            factor_pct: 60,
        });
        plan.events.push(ChaosEvent::Move {
            node: victim,
            dx_mils: 400,
            dy_mils: -250,
        });
        plan.events.push(ChaosEvent::Degrade {
            node: victim,
            factor_pct: 100,
        });
        let report = runner.run_plan(triple, &plan).unwrap();
        assert!(
            !report.failed(),
            "sound repair must absorb scripted churn:\n{}",
            report.trace.render()
        );
        let moves = report
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Move { .. }))
            .count();
        let degrades = report
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Degrade { .. }))
            .count();
        assert_eq!(moves, 1, "the scripted move must be recorded");
        assert_eq!(degrades, 2, "degrade + restore must both be recorded");
        // A boundary-node move is inert (the certified ring is pinned).
        let ring = scenario
            .boundary_nodes()
            .first()
            .copied()
            .expect("certified scenarios have a ring");
        let mut pinned = ChaosPlan::new();
        pinned.events.push(ChaosEvent::Move {
            node: ring,
            dx_mils: 500,
            dy_mils: 500,
        });
        let quiet = runner.run_plan(triple, &pinned).unwrap();
        assert!(quiet
            .trace
            .events
            .iter()
            .all(|e| !matches!(e, TraceEvent::Move { .. })));
    }

    #[test]
    fn explicit_plans_replay_and_empty_plans_are_noops() {
        let runner = ChaosRunner::new(quick_opts());
        let triple = SeedTriple::derived(5, 0);
        let empty = runner.run_plan(triple, &ChaosPlan::new()).unwrap();
        assert!(!empty.failed(), "an empty plan cannot violate anything");
        // The final set equals the initial schedule's set: no faults ran.
        assert!(matches!(
            empty.trace.events.first(),
            Some(TraceEvent::Phase { label, .. }) if label == "schedule"
        ));
    }
}
