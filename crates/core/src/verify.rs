//! Criterion verification and boundary pre-processing.
//!
//! The scheduler never needs a boundary cycle, but the *claims* of
//! Propositions 2/3 do: this module turns a certified outer boundary walk
//! into a cycle-space target and checks `τ`-partitionability on the active
//! subgraph. It also implements the multiply-connected pre-processing of
//! Sec. V-B: coning inner boundaries with virtual apex nodes.

use confine_cycles::gf2::BitVec;
use confine_cycles::partition::PartitionTester;
use confine_deploy::outer::{extract_outer_walk, OuterWalk};
use confine_deploy::Scenario;
use confine_graph::{Graph, GraphError, Masked, NodeId};

/// Result of a criterion verification on a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriterionOutcome {
    /// The boundary is `τ`-partitionable in the active subgraph: coverage
    /// certified.
    Satisfied,
    /// The boundary is not `τ`-partitionable in the active subgraph.
    Violated,
    /// No certified outer boundary walk could be extracted (the criterion is
    /// neither proven nor refuted).
    NoCertifiedBoundary,
}

/// Verifies the cycle-partition criterion (Proposition 2) for `active` nodes
/// of `scenario` at confine size `tau`.
///
/// Extracts a certified outer boundary walk (every boundary node must be in
/// `active` — the scheduler guarantees this), folds it into a cycle-space
/// target of the active induced subgraph, and tests `τ`-partitionability
/// exactly via a minimum cycle basis.
pub fn verify_criterion(scenario: &Scenario, active: &[NodeId], tau: usize) -> CriterionOutcome {
    let Some(walk) = extract_outer_walk(scenario) else {
        return CriterionOutcome::NoCertifiedBoundary;
    };
    match boundary_partition_tau(scenario, &walk, active) {
        Some(min_tau) if min_tau <= tau => CriterionOutcome::Satisfied,
        Some(_) => CriterionOutcome::Violated,
        None => CriterionOutcome::Violated,
    }
}

/// The smallest `τ` for which the extracted boundary is `τ`-partitionable in
/// the subgraph induced by `active`, or `None` when the boundary is not even
/// in the active subgraph's cycle space (e.g. an active boundary edge was
/// lost).
pub fn boundary_partition_tau(
    scenario: &Scenario,
    walk: &OuterWalk,
    active: &[NodeId],
) -> Option<usize> {
    let masked = Masked::from_active(&scenario.graph, active);
    let induced = masked.to_induced();
    let mut target = BitVec::zeros(induced.graph.edge_count());
    for (a, b) in walk.odd_edges() {
        let ia = induced.from_parent(a)?;
        let ib = induced.from_parent(b)?;
        let e = induced.graph.edge_between(ia, ib)?;
        target.flip(e.index());
    }
    let tester = PartitionTester::new(&induced.graph);
    tester.min_partition_tau(&target)
}

/// A graph whose inner boundaries have been coned off (Sec. V-B): one
/// virtual apex node per inner boundary, adjacent to all of its nodes.
#[derive(Debug, Clone)]
pub struct ConedGraph {
    /// The extended graph: original nodes keep their ids; apexes follow.
    pub graph: Graph,
    /// The apex node of each coned boundary, in input order.
    pub apexes: Vec<NodeId>,
    /// Protection flags for the extended graph: original boundary flags,
    /// plus `true` for every coned-boundary node and apex (repaired
    /// boundaries must not be deleted).
    pub protected: Vec<bool>,
}

/// Cones each listed inner boundary with a fresh apex node.
///
/// For a multiply-connected target area with `n` boundaries, the paper cones
/// `n − 1` of them (all inner ones) so the network can be treated as having
/// a single outer boundary; nodes of repaired boundaries and the apexes are
/// protected from deletion.
///
/// # Errors
///
/// Returns an error if a boundary lists an unknown node.
pub fn cone_inner_boundaries(
    graph: &Graph,
    base_protected: &[bool],
    inner_boundaries: &[Vec<NodeId>],
) -> Result<ConedGraph, GraphError> {
    let mut extended = graph.clone();
    let mut protected: Vec<bool> = base_protected.to_vec();
    protected.resize(graph.node_count(), false);
    let mut apexes = Vec::with_capacity(inner_boundaries.len());
    for ring in inner_boundaries {
        let apex = extended.add_node();
        protected.push(true);
        for &v in ring {
            extended.check_node(v)?;
            // Ring nodes may repeat across listings; tolerate existing edges.
            if !extended.has_edge(apex, v) {
                extended.add_edge(apex, v)?;
            }
            protected[v.index()] = true;
        }
        apexes.push(apex);
    }
    Ok(ConedGraph {
        graph: extended,
        apexes,
        protected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcc::Dcc;
    use confine_deploy::{Point, Rect};
    use confine_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A wheel drawn in the plane: rim = boundary ring, hub internal.
    fn wheel_scenario(rim: usize) -> Scenario {
        let graph = generators::wheel_graph(rim);
        let mut positions = vec![Point::new(0.0, 0.0)];
        for i in 0..rim {
            let t = std::f64::consts::TAU * i as f64 / rim as f64;
            positions.push(Point::new(t.cos(), t.sin()));
        }
        let mut boundary = vec![false; rim + 1];
        for flag in boundary.iter_mut().skip(1) {
            *flag = true;
        }
        Scenario {
            graph,
            positions,
            rc: 1.2,
            boundary,
            region: Rect::new(-1.0, -1.0, 1.0, 1.0),
            target: Rect::new(-0.4, -0.4, 0.4, 0.4),
        }
    }

    #[test]
    fn wheel_criterion_with_and_without_hub() {
        let s = wheel_scenario(8);
        let all: Vec<NodeId> = (0..9).map(NodeId::from).collect();
        // With the hub: rim partitions into triangles.
        assert_eq!(verify_criterion(&s, &all, 3), CriterionOutcome::Satisfied);
        // Without the hub: the rim is only partitionable as itself (τ = 8).
        let rim_only: Vec<NodeId> = (1..9).map(NodeId::from).collect();
        assert_eq!(
            verify_criterion(&s, &rim_only, 7),
            CriterionOutcome::Violated
        );
        assert_eq!(
            verify_criterion(&s, &rim_only, 8),
            CriterionOutcome::Satisfied
        );
    }

    #[test]
    fn scheduler_output_satisfies_criterion() {
        // Theorem 5, end to end on the wheel: schedule at τ = 8 deletes the
        // hub and the criterion still holds at τ = 8.
        let s = wheel_scenario(8);
        let mut rng = StdRng::seed_from_u64(2);
        let set = Dcc::builder(8)
            .centralized()
            .unwrap()
            .run(&s.graph, &s.boundary, &mut rng)
            .unwrap();
        assert_eq!(set.active_count(), 8);
        assert_eq!(
            verify_criterion(&s, &set.active, 8),
            CriterionOutcome::Satisfied
        );
    }

    #[test]
    fn boundary_partition_tau_matches_wheel_structure() {
        let s = wheel_scenario(6);
        let walk = extract_outer_walk(&s).unwrap();
        let all: Vec<NodeId> = (0..7).map(NodeId::from).collect();
        assert_eq!(boundary_partition_tau(&s, &walk, &all), Some(3));
        let rim: Vec<NodeId> = (1..7).map(NodeId::from).collect();
        assert_eq!(boundary_partition_tau(&s, &walk, &rim), Some(6));
    }

    #[test]
    fn missing_boundary_walk_is_reported() {
        let mut s = wheel_scenario(8);
        s.boundary = vec![false; 9];
        assert_eq!(
            verify_criterion(&s, &[NodeId(0)], 3),
            CriterionOutcome::NoCertifiedBoundary
        );
    }

    #[test]
    fn coning_adds_protected_apex() {
        let g = generators::cycle_graph(6);
        let ring: Vec<NodeId> = (0..6).map(NodeId::from).collect();
        let coned = cone_inner_boundaries(&g, &[false; 6], std::slice::from_ref(&ring)).unwrap();
        assert_eq!(coned.graph.node_count(), 7);
        assert_eq!(coned.apexes, vec![NodeId(6)]);
        assert_eq!(coned.graph.degree(NodeId(6)), 6);
        assert!(
            coned.protected.iter().all(|&p| p),
            "ring + apex all protected"
        );
        // The coned ring is now 3-partitionable (fan of apex triangles).
        let c = confine_cycles::Cycle::from_vertex_cycle(&coned.graph, &ring).unwrap();
        assert!(confine_cycles::partition::is_tau_partitionable(
            &coned.graph,
            c.edge_vec(),
            3
        ));
    }

    #[test]
    fn coning_rejects_unknown_nodes() {
        let g = generators::cycle_graph(4);
        let err = cone_inner_boundaries(&g, &[false; 4], &[vec![NodeId(9)]]);
        assert!(err.is_err());
    }

    #[test]
    fn coning_multiple_boundaries() {
        // Two disjoint rings coned separately.
        let mut g = Graph::new();
        g.add_nodes(8);
        for i in 0..4 {
            g.add_edge(NodeId::from(i), NodeId::from((i + 1) % 4))
                .unwrap();
            g.add_edge(NodeId::from(4 + i), NodeId::from(4 + (i + 1) % 4))
                .unwrap();
        }
        let rings = vec![
            (0..4).map(NodeId::from).collect::<Vec<_>>(),
            (4..8).map(NodeId::from).collect(),
        ];
        let coned = cone_inner_boundaries(&g, &[false; 8], &rings).unwrap();
        assert_eq!(coned.graph.node_count(), 10);
        assert_eq!(coned.apexes.len(), 2);
        assert_eq!(coned.graph.degree(coned.apexes[0]), 4);
        assert_eq!(coned.graph.degree(coned.apexes[1]), 4);
    }
}
