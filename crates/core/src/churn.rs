//! Streaming coverage maintenance under continuous churn: mobility,
//! duty-cycling and radio degradation feeding the repair loop round by
//! round.
//!
//! Where [`crate::chaos`] scripts *discrete* fault events against a static
//! topology, this module runs the protocol against a topology that never
//! stops changing: every round, nodes move (random-waypoint or
//! bounded-drift, [`MobilityModel`]), radios degrade or recover, and a
//! per-node duty cycle takes nodes down and up ([`DutyCycle`]). The
//! [`ChurnRunner`] folds each round's **topology delta** — moved, degraded,
//! slept and woken nodes plus every flipped link — into dirty seeds for the
//! incremental reconcile pass, so DCC *maintains* τ-confine coverage
//! instead of recomputing it from scratch.
//!
//! Determinism matches the chaos layer: a [`SeedTriple`] fixes the
//! deployment (topology seed), the mobility/duty/degradation streams (fault
//! seed) and every protocol-level choice (schedule seed), so a churn trace
//! replays bitwise-identically across thread counts and cache modes.
//!
//! ## Graceful-degradation accounting
//!
//! The runner reports [`ChurnMetrics`]:
//!
//! * **coverage-hole exposure** — `Σ_rounds (1 − covered_fraction)` of the
//!   maintained active set over the target area, a rounds × uncovered-area
//!   proxy for how much coverage churn transiently costs;
//! * **repair traffic** — messages spent by the per-round reconcile passes
//!   (the initial schedule is reported separately in `total_messages`);
//! * **false-suspicion rate** — duty-cycle sleeps are *announced*, so they
//!   never trip failure detection; but a link that silently vanishes under
//!   movement or degradation is indistinguishable, locally, from a peer
//!   death. Each active–active link lost between live nodes counts two
//!   false suspicions (one per monitoring endpoint).
//!
//! The invariant oracles are the differential ones of the chaos harness,
//! evaluated every round and **enforced** (there are no partitions here to
//! excuse degradation): the active set must stay a VPT fixpoint of the
//! *current* graph, and τ-partitionability must not regress against what
//! the currently-awake node set could achieve.

use std::collections::BTreeSet;

use confine_deploy::coverage::verify_coverage;
use confine_deploy::deployment;
use confine_deploy::geometry::Rect;
use confine_deploy::mobility::{churn_graph, DutyCycle, MobilityModel, MobilityWalker};
use confine_deploy::scenario::scenario_with_graph;
use confine_deploy::{CommModel, Scenario};
use confine_graph::{traverse, NodeId};
use confine_netsim::chaos::{SeedTriple, Trace, TraceEvent};
use confine_netsim::faults::FaultPlan;
use confine_netsim::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dcc::{Dcc, RepairRunner};
use crate::distributed::DistributedStats;
use crate::schedule::is_vpt_fixpoint;
use crate::verify::{verify_criterion, CriterionOutcome};
use crate::vpt::neighborhood_radius;
use crate::vpt_engine::EngineConfig;

/// Which mobility model drives the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnModel {
    /// Random waypoint across the whole region.
    RandomWaypoint,
    /// Bounded drift around each node's deployment position.
    BoundedDrift,
}

/// Configuration of a churn campaign (shared by every seed triple).
#[derive(Debug, Clone)]
pub struct ChurnOptions {
    /// Confine size `τ`.
    pub tau: usize,
    /// Nodes per random scenario.
    pub nodes: usize,
    /// Target average degree of the initial random deployment.
    pub degree: f64,
    /// Churn rounds to simulate after the initial schedule.
    pub rounds: usize,
    /// Mobility model.
    pub model: ChurnModel,
    /// Node speed in units of `Rc` per round (`0` = static).
    pub speed: f64,
    /// Maximum waypoint pause in rounds (random-waypoint only).
    pub pause: usize,
    /// Drift tether radius in units of `Rc` (bounded-drift only).
    pub drift_bound: f64,
    /// Duty-cycle window length in rounds (`0` disables duty-cycling).
    pub duty_period: usize,
    /// Rounds asleep per duty window.
    pub duty_down: usize,
    /// Rotate one node's radio degradation every this many rounds
    /// (`0` disables degradation).
    pub degrade_every: usize,
    /// Degraded range factor in percent (e.g. `70` = radios at 70 %).
    pub degrade_pct: u8,
    /// Use a quasi-UDG radio (certain links below `0.6·Rc`, annulus links
    /// with probability `0.5`) instead of a clean UDG.
    pub quasi: bool,
    /// VPT engine configuration (worker threads, verdict cache) applied to
    /// every schedule and repair run of the campaign.
    pub engine: EngineConfig,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions {
            tau: 4,
            // Same sizing rationale as the chaos harness: small deployments
            // are boundary-dominated and leave no internal nodes to churn.
            nodes: 120,
            degree: 12.0,
            rounds: 20,
            model: ChurnModel::RandomWaypoint,
            speed: 0.05,
            pause: 2,
            drift_bound: 0.5,
            duty_period: 8,
            duty_down: 2,
            degrade_every: 5,
            degrade_pct: 70,
            quasi: false,
            engine: EngineConfig::builder().threads(1).build(),
        }
    }
}

/// Graceful-degradation accounting of one churn run; see the
/// [module docs](self) for the metric definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnMetrics {
    /// Churn rounds simulated.
    pub rounds: usize,
    /// `Σ_rounds (1 − covered_fraction)`: rounds × uncovered-area proxy.
    pub hole_exposure: f64,
    /// Mean per-round covered fraction of the target area.
    pub mean_covered: f64,
    /// Worst per-round covered fraction.
    pub min_covered: f64,
    /// Messages spent by the per-round reconcile passes.
    pub repair_messages: usize,
    /// All protocol messages including the initial schedule.
    pub total_messages: usize,
    /// Active–active link losses between live nodes, two per link.
    pub false_suspicions: usize,
    /// `false_suspicions / rounds`.
    pub suspicion_rate: f64,
    /// Node-moves applied across the run.
    pub moves: usize,
    /// Degradation toggles applied across the run.
    pub degrades: usize,
    /// Duty-cycle sleep transitions across the run.
    pub sleeps: usize,
    /// Duty-cycle wake transitions across the run.
    pub wakes: usize,
}

/// The result of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// The seed triple that (re)produces this run.
    pub triple: SeedTriple,
    /// The replayable per-round trace, oracle verdicts included.
    pub trace: Trace,
    /// The final active set, in id order.
    pub active: Vec<NodeId>,
    /// Aggregate protocol cost across the schedule and every reconcile.
    pub stats: DistributedStats,
    /// Graceful-degradation metrics.
    pub metrics: ChurnMetrics,
}

impl ChurnReport {
    /// Did any *enforced* oracle fail?
    pub fn failed(&self) -> bool {
        !self.trace.violations().is_empty()
    }
}

/// Executes seeded churn campaigns; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct ChurnRunner {
    opts: ChurnOptions,
}

impl ChurnRunner {
    /// Creates a runner for the given campaign configuration.
    pub fn new(opts: ChurnOptions) -> Self {
        ChurnRunner { opts }
    }

    /// The campaign configuration.
    pub fn options(&self) -> &ChurnOptions {
        &self.opts
    }

    /// The radio model of this campaign (range `Rc = 1`).
    fn comm_model(&self) -> CommModel {
        if self.opts.quasi {
            CommModel::QuasiUdg {
                r_in: 0.6,
                rc: 1.0,
                p_mid: 0.5,
            }
        } else {
            CommModel::Udg { rc: 1.0 }
        }
    }

    /// The mobility model in position units (`Rc = 1`).
    fn mobility_model(&self) -> MobilityModel {
        match self.opts.model {
            ChurnModel::RandomWaypoint => MobilityModel::RandomWaypoint {
                speed: self.opts.speed,
                pause: self.opts.pause,
            },
            ChurnModel::BoundedDrift => MobilityModel::BoundedDrift {
                step: self.opts.speed,
                bound: self.opts.drift_bound,
            },
        }
    }

    /// The initial scenario a triple's topology seed expands into: a
    /// uniform deployment whose churn-graph connectivity (at full radio
    /// factors) carries a certified boundary ring.
    pub fn scenario(&self, triple: SeedTriple) -> Scenario {
        let mut rng = StdRng::seed_from_u64(triple.topology);
        let side = deployment::square_side_for_degree(self.opts.nodes, 1.0, self.opts.degree);
        let region = Rect::new(0.0, 0.0, side, side);
        let dep = deployment::uniform(self.opts.nodes, region, &mut rng);
        let factor = vec![100u8; self.opts.nodes];
        let graph = churn_graph(
            &dep.positions,
            self.comm_model(),
            &factor,
            link_seed(triple),
        );
        scenario_with_graph(dep, 1.0, graph)
    }

    /// Runs the triple: initial DCC-D schedule, then `rounds` rounds of
    /// mobility / duty-cycling / degradation with streaming reconciliation.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] of the underlying drivers (oracle
    /// verdicts live in the returned trace, not in the error path).
    pub fn run(&self, triple: SeedTriple) -> Result<ChurnReport, SimError> {
        let mut scenario = self.scenario(triple);
        let boundary = scenario.boundary.clone();
        let n = scenario.graph.node_count();
        let model = self.comm_model();
        let links = link_seed(triple);
        let mut factor = vec![100u8; n];
        let mut rng = StdRng::seed_from_u64(triple.schedule);
        let mut trace = Trace::new();
        let mut total = DistributedStats::default();

        // Initial schedule (consumes the head of the schedule-seed stream).
        let builder = Dcc::builder(self.opts.tau).engine_config(self.opts.engine);
        let (set, sched_stats) =
            builder
                .distributed()?
                .run(&scenario.graph, &boundary, &mut rng)?;
        total.merge(&sched_stats);
        trace.push(TraceEvent::Phase {
            step: 0,
            label: "schedule".into(),
            rounds: sched_stats.comm_rounds,
            messages: sched_stats.total_messages(),
            dropped: sched_stats.dropped,
        });
        let mut active = set.active;

        // Post-schedule baseline, as in the chaos harness: the per-round
        // oracles are differential against it.
        let baseline_partitionable = self.partitionable(&scenario, &active);
        let baseline_fixpoint = is_vpt_fixpoint(&scenario.graph, &active, &boundary, self.opts.tau);
        trace.push(TraceEvent::Oracle {
            step: 0,
            name: "partitionable".into(),
            pass: baseline_partitionable,
            enforced: false,
        });
        trace.push(TraceEvent::Oracle {
            step: 0,
            name: "fixpoint".into(),
            pass: baseline_fixpoint,
            enforced: true,
        });

        // Fault-seed streams: mobility walk, duty phases, degradation picks
        // each get an independent derived stream so changing one knob never
        // rewrites the others.
        let walker_seed = SeedTriple::derived(triple.faults, 1).topology;
        let duty_seed = SeedTriple::derived(triple.faults, 2).topology;
        let mut degrade_rng = StdRng::seed_from_u64(SeedTriple::derived(triple.faults, 3).topology);
        // Boundary nodes are pinned and duty-exempt: the certified ring is
        // the input assumption every oracle stands on.
        let mobile: Vec<bool> = boundary.iter().map(|&b| !b).collect();
        let mut walker = MobilityWalker::new(
            self.mobility_model(),
            scenario.region,
            &scenario.positions,
            mobile,
            walker_seed,
        );
        let duty = DutyCycle::new(
            self.opts.duty_period,
            self.opts.duty_down,
            n,
            boundary.clone(),
            duty_seed,
        );
        let internals: Vec<NodeId> = scenario.internal_nodes();

        // Coverage accounting: sensing radius from the paper's granularity
        // relation rs = 2·Rc/τ, sampled on a fixed raster.
        let rs = 2.0 / self.opts.tau.max(1) as f64;
        let resolution = (scenario.target.width().min(scenario.target.height()) / 96.0).max(1e-6);

        let k = neighborhood_radius(self.opts.tau);
        let mut metrics = ChurnMetrics {
            rounds: self.opts.rounds,
            hole_exposure: 0.0,
            mean_covered: 0.0,
            min_covered: 1.0,
            repair_messages: 0,
            total_messages: 0,
            false_suspicions: 0,
            suspicion_rate: 0.0,
            moves: 0,
            degrades: 0,
            sleeps: 0,
            wakes: 0,
        };
        let mut covered_sum = 0.0;

        for round in 1..=self.opts.rounds {
            // -- 1. Physical churn: movement, degradation, duty cycling. --
            let moved = walker.advance(&mut scenario.positions);
            let mut degraded: Vec<NodeId> = Vec::new();
            if self.opts.degrade_every > 0
                && round % self.opts.degrade_every == 0
                && !internals.is_empty()
            {
                let v = internals[degrade_rng.gen_range(0..internals.len())];
                let target = if factor[v.index()] == 100 {
                    self.opts.degrade_pct.min(100)
                } else {
                    100
                };
                if factor[v.index()] != target {
                    factor[v.index()] = target;
                    degraded.push(v);
                }
            }
            let (slept, woken) = duty.transitions(round);

            // -- 2. Topology delta: rebuild and diff the graph. --
            let new_graph = churn_graph(&scenario.positions, model, &factor, links);
            let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
            let mut edges_changed = 0usize;
            let mut lost_live_links = 0usize;
            let active_set: BTreeSet<NodeId> = active.iter().copied().collect();
            for (_, a, b) in scenario.graph.edges() {
                if !new_graph.has_edge(a, b) {
                    edges_changed += 1;
                    dirty.insert(a);
                    dirty.insert(b);
                    // Removed edges stale verdicts across the *old* metric.
                    dirty.extend(traverse::k_hop_neighbors(&scenario.graph, a, k));
                    dirty.extend(traverse::k_hop_neighbors(&scenario.graph, b, k));
                    // False-suspicion accounting: a silently lost link
                    // between two live active nodes reads, locally, as a
                    // peer death at both monitoring endpoints.
                    if active_set.contains(&a)
                        && active_set.contains(&b)
                        && !duty.is_down(a, round)
                        && !duty.is_down(b, round)
                    {
                        lost_live_links += 1;
                    }
                }
            }
            for (_, a, b) in new_graph.edges() {
                if !scenario.graph.has_edge(a, b) {
                    edges_changed += 1;
                    dirty.insert(a);
                    dirty.insert(b);
                }
            }
            trace.push(TraceEvent::Delta {
                step: round,
                moved: moved.len(),
                degraded: degraded.len(),
                slept: slept.len(),
                woken: woken.len(),
                edges_changed,
            });
            dirty.extend(moved.iter().copied());
            dirty.extend(degraded.iter().copied());
            dirty.extend(woken.iter().copied());
            // A newly slept node is a dead flood source: seed from its
            // old-graph neighbourhood instead, like a crash repair does.
            for &v in &slept {
                dirty.extend(
                    traverse::k_hop_neighbors(&scenario.graph, v, k)
                        .into_iter()
                        .filter(|u| !duty.is_down(*u, round)),
                );
            }
            metrics.moves += moved.len();
            metrics.degrades += degraded.len();
            metrics.sleeps += slept.len();
            metrics.wakes += woken.len();
            metrics.false_suspicions += 2 * lost_live_links;
            scenario.graph = new_graph;

            // -- 3. Announced sleeps leave the active set immediately. --
            if !slept.is_empty() || !woken.is_empty() {
                trace.push(TraceEvent::Membership {
                    step: round,
                    woken: woken.clone(),
                    slept: slept.clone(),
                });
            }
            active.retain(|v| !duty.is_down(*v, round));

            // -- 4. Streaming reconcile around the delta. --
            let down: Vec<NodeId> = (0..n)
                .map(NodeId::from)
                .filter(|v| duty.is_down(*v, round))
                .collect();
            if !dirty.is_empty() {
                let seeds: Vec<NodeId> = dirty.iter().copied().collect();
                let mut runner = self.repair_runner(&down)?;
                let outcome =
                    runner.reconcile(&scenario.graph, &boundary, &active, &seeds, &mut rng)?;
                total.merge(&outcome.stats);
                metrics.repair_messages += outcome.stats.total_messages();
                trace.push(TraceEvent::Phase {
                    step: round,
                    label: "reconcile".into(),
                    rounds: outcome.stats.comm_rounds,
                    messages: outcome.stats.total_messages(),
                    dropped: outcome.stats.dropped,
                });
                active = outcome.set.active;
            }

            // -- 5. Enforced differential oracles, every round. --
            let partitionable = self.partitionable(&scenario, &active);
            let awake: Vec<NodeId> = (0..n)
                .map(NodeId::from)
                .filter(|v| !duty.is_down(*v, round))
                .collect();
            let achievable = self.partitionable(&scenario, &awake);
            trace.push(TraceEvent::Oracle {
                step: round,
                name: "partitionable".into(),
                pass: partitionable || !(baseline_partitionable && achievable),
                enforced: true,
            });
            let fixpoint = is_vpt_fixpoint(&scenario.graph, &active, &boundary, self.opts.tau);
            trace.push(TraceEvent::Oracle {
                step: round,
                name: "fixpoint".into(),
                pass: fixpoint || !baseline_fixpoint,
                enforced: true,
            });

            // -- 6. Coverage-hole accounting on ground truth. --
            let report = verify_coverage(
                &scenario.positions,
                &active,
                rs,
                scenario.target,
                resolution,
            );
            covered_sum += report.covered_fraction;
            metrics.hole_exposure += 1.0 - report.covered_fraction;
            if report.covered_fraction < metrics.min_covered {
                metrics.min_covered = report.covered_fraction;
            }
        }

        let rounds = self.opts.rounds.max(1) as f64;
        metrics.mean_covered = covered_sum / rounds;
        metrics.suspicion_rate = metrics.false_suspicions as f64 / rounds;
        metrics.total_messages = total.total_messages();
        total.false_suspicions += metrics.false_suspicions;
        trace.push(TraceEvent::Final {
            active: active.clone(),
        });
        Ok(ChurnReport {
            triple,
            trace,
            active,
            stats: total,
            metrics,
        })
    }

    /// A repair runner whose ambient fault plan crashes every duty-down
    /// node at round 0: physically-off nodes neither hear wake floods nor
    /// answer discovery.
    fn repair_runner(&self, down: &[NodeId]) -> Result<RepairRunner, SimError> {
        let mut builder = Dcc::builder(self.opts.tau).engine_config(self.opts.engine);
        let mut plan = FaultPlan::new();
        for &v in down {
            plan = plan.crash(v, 0);
        }
        if !plan.is_empty() {
            builder = builder.fault_plan(plan);
        }
        builder.repair()
    }

    /// τ-partitionability of the certified boundary; vacuous without a
    /// certified walk (as in the chaos harness).
    fn partitionable(&self, scenario: &Scenario, active: &[NodeId]) -> bool {
        !matches!(
            verify_criterion(scenario, active, self.opts.tau),
            CriterionOutcome::Violated
        )
    }
}

/// The stable quasi-UDG annulus seed of a campaign: derived from the
/// topology seed so the link lottery is part of the topology, not of the
/// fault or schedule streams.
fn link_seed(triple: SeedTriple) -> u64 {
    SeedTriple::derived(triple.topology, 0x11).faults
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ChurnOptions {
        ChurnOptions {
            rounds: 6,
            ..ChurnOptions::default()
        }
    }

    #[test]
    fn churn_runs_stay_clean_and_report_metrics() {
        let runner = ChurnRunner::new(quick_opts());
        let mut churned = 0usize;
        for i in 0..2 {
            let triple = SeedTriple::derived(0x60, i);
            let report = runner.run(triple).unwrap();
            assert!(
                !report.failed(),
                "seed {triple} must maintain coverage under churn:\n{}",
                report.trace.render()
            );
            assert_eq!(report.metrics.rounds, 6);
            assert!(report.metrics.mean_covered >= 0.0);
            assert!(report.metrics.min_covered <= report.metrics.mean_covered + 1e-9);
            assert!(report.metrics.total_messages >= report.metrics.repair_messages);
            assert!(!report.active.is_empty(), "the ring at least stays awake");
            churned += report.metrics.moves + report.metrics.sleeps + report.metrics.degrades;
        }
        assert!(churned > 0, "default options must actually churn");
    }

    #[test]
    fn duty_cycle_sleeps_are_announced_not_suspected() {
        // Static, never-degrading network: every link loss would be a bug,
        // so duty cycling alone must produce zero false suspicions.
        let runner = ChurnRunner::new(ChurnOptions {
            speed: 0.0,
            degrade_every: 0,
            rounds: 10,
            quasi: false,
            ..quick_opts()
        });
        let report = runner.run(SeedTriple::derived(0x61, 0)).unwrap();
        assert!(!report.failed(), "{}", report.trace.render());
        assert_eq!(
            report.metrics.false_suspicions, 0,
            "announced sleeps must not read as failures"
        );
        assert!(
            report.metrics.sleeps > 0,
            "the duty cycle must have fired at all"
        );
        assert_eq!(report.metrics.moves, 0);
        assert_eq!(report.metrics.degrades, 0);
    }

    #[test]
    fn replay_is_bitwise_identical_and_seeds_are_independent() {
        let runner = ChurnRunner::new(ChurnOptions {
            rounds: 5,
            quasi: true,
            ..quick_opts()
        });
        let triple = SeedTriple::derived(0x62, 3);
        let a = runner.run(triple).unwrap();
        let b = runner.run(triple).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.active, b.active);
        assert_eq!(a.metrics, b.metrics);
        // A different fault seed churns differently on the same topology.
        let c = runner
            .run(SeedTriple {
                faults: triple.faults ^ 0xF00D,
                ..triple
            })
            .unwrap();
        assert_ne!(a.trace.digest(), c.trace.digest());
    }

    #[test]
    fn static_options_are_a_fixpoint_noop() {
        // No movement, no duty cycle, no degradation, UDG radio: after the
        // schedule nothing changes, so there is nothing to reconcile.
        let runner = ChurnRunner::new(ChurnOptions {
            speed: 0.0,
            duty_period: 0,
            degrade_every: 0,
            quasi: false,
            rounds: 4,
            ..quick_opts()
        });
        let report = runner.run(SeedTriple::derived(0x63, 1)).unwrap();
        assert!(!report.failed(), "{}", report.trace.render());
        assert_eq!(report.metrics.repair_messages, 0, "no deltas, no repairs");
        assert_eq!(report.metrics.false_suspicions, 0);
        assert_eq!(report.metrics.moves, 0);
        assert_eq!(report.metrics.hole_exposure * 0.0, 0.0, "finite exposure");
    }
}
