//! The distributed DCC protocol (DCC-D), executed on the message-passing
//! simulator.
//!
//! Each deletion round of the paper's scheduler maps to two protocol phases
//! over the *current* active topology:
//!
//! 1. **Discovery** — every node floods its adjacency list `k = ⌈τ/2⌉` hops
//!    ([`confine_netsim::protocols::KHopDiscovery`]); each internal node
//!    reconstructs its punctured neighbourhood graph `Γ^k(v)` and evaluates
//!    the void preserving transformation locally.
//! 2. **Election** — deletable nodes draw random priorities and flood them
//!    `m = ⌈τ/2⌉ + 1` hops
//!    ([`confine_netsim::protocols::LocalMinElection`]); locally minimal
//!    candidates win and switch themselves off. Winners are `m`-hop
//!    independent, so their deletions are mutually safe (their punctured
//!    neighbourhoods are disjoint and unchanged by each other).
//!
//! Rounds repeat until no candidate exists. Whenever at least one candidate
//! exists, the globally minimal one wins its election, so the protocol makes
//! progress and terminates. The result coincides with a run of the
//! centralized scheduler with a particular deletion order, and retains every
//! guarantee of Theorems 5/6.

use confine_graph::{Graph, GraphView, Masked, NodeId};
use confine_netsim::protocols::{KHopDiscovery, LocalMinElection};
use confine_netsim::{Engine, RunStats, SimError};
use rand::Rng;

use crate::schedule::CoverageSet;
use crate::vpt::{independence_radius, neighborhood_radius, vpt_graph_ok};

/// Aggregate cost of a distributed run, per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributedStats {
    /// Deletion rounds executed (each = one discovery + one election).
    pub deletion_rounds: usize,
    /// Total communication rounds across all phases.
    pub comm_rounds: usize,
    /// Messages spent in discovery phases.
    pub discovery_messages: usize,
    /// Messages spent in election phases.
    pub election_messages: usize,
    /// Total payload bytes across all phases.
    pub bytes: usize,
}

impl DistributedStats {
    /// Total messages across both phases.
    pub fn total_messages(&self) -> usize {
        self.discovery_messages + self.election_messages
    }

    fn absorb_discovery(&mut self, stats: RunStats) {
        self.comm_rounds += stats.rounds;
        self.discovery_messages += stats.messages;
        self.bytes += stats.bytes;
    }

    fn absorb_election(&mut self, stats: RunStats) {
        self.comm_rounds += stats.rounds;
        self.election_messages += stats.messages;
        self.bytes += stats.bytes;
    }
}

/// The distributed DCC scheduler.
///
/// # Example
///
/// ```
/// use confine_core::distributed::DistributedDcc;
/// use confine_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::wheel_graph(8);
/// let mut boundary = vec![false; 9];
/// for i in 1..=8 { boundary[i] = true; }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let (set, stats) = DistributedDcc::new(8).run(&g, &boundary, &mut rng)?;
/// assert_eq!(set.deleted, vec![confine_graph::NodeId(0)]);
/// assert!(stats.total_messages() > 0);
/// # Ok::<(), confine_netsim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DistributedDcc {
    tau: usize,
    max_comm_rounds: usize,
}

impl DistributedDcc {
    /// Creates the protocol driver for confine size `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `tau < 3`.
    pub fn new(tau: usize) -> Self {
        assert!(tau >= crate::config::MIN_TAU, "confine size must be ≥ 3");
        DistributedDcc { tau, max_comm_rounds: 10_000 }
    }

    /// Overrides the per-phase communication round limit.
    pub fn with_round_limit(mut self, limit: usize) -> Self {
        self.max_comm_rounds = limit;
        self
    }

    /// Executes the protocol on `graph` with the given boundary flags.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if any phase fails to
    /// converge within the configured limit (bounded-diameter phases always
    /// converge in `k` resp. `m` rounds, so this indicates a configuration
    /// error).
    ///
    /// # Panics
    ///
    /// Panics if `boundary.len() != graph.node_count()`.
    pub fn run<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        rng: &mut R,
    ) -> Result<(CoverageSet, DistributedStats), SimError> {
        assert_eq!(boundary.len(), graph.node_count(), "boundary flags must cover all nodes");
        let k = neighborhood_radius(self.tau);
        let m = independence_radius(self.tau);
        let mut masked = Masked::all_active(graph);
        let mut stats = DistributedStats::default();
        let mut deleted = Vec::new();

        loop {
            // Phase 1: k-hop discovery + local VPT evaluation.
            let mut discovery = Engine::new(&masked, |_| KHopDiscovery::new(k));
            stats.absorb_discovery(discovery.run(self.max_comm_rounds)?);
            let mut deletable = vec![false; graph.node_count()];
            let mut any = false;
            for v in masked.active_nodes() {
                if boundary[v.index()] {
                    continue;
                }
                let state = discovery.state(v).expect("active nodes ran discovery");
                let (punctured, _) = state.punctured_graph(v);
                if vpt_graph_ok(&punctured, self.tau) {
                    deletable[v.index()] = true;
                    any = true;
                }
            }
            if !any {
                break;
            }

            // Phase 2: m-hop local-minimum election among candidates.
            let mut priorities = vec![0.0f64; graph.node_count()];
            for v in masked.active_nodes() {
                if deletable[v.index()] {
                    priorities[v.index()] = rng.gen();
                }
            }
            let mut election = Engine::new(&masked, |v| {
                LocalMinElection::new(m, deletable[v.index()], priorities[v.index()])
            });
            stats.absorb_election(election.run(self.max_comm_rounds)?);
            let winners: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| deletable[v.index()])
                .filter(|&v| election.state(v).expect("ran").is_winner(v))
                .collect();
            debug_assert!(!winners.is_empty(), "the global minimum always wins");
            for v in winners {
                masked.deactivate(v);
                deleted.push(v);
            }
            stats.deletion_rounds += 1;
        }

        let set = CoverageSet {
            active: masked.active_nodes().collect(),
            deleted,
            rounds: stats.deletion_rounds,
        };
        Ok((set, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::is_vpt_fixpoint;
    use confine_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn king_boundary(w: usize, h: usize) -> Vec<bool> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect()
    }

    #[test]
    fn distributed_reaches_vpt_fixpoint() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let mut rng = StdRng::seed_from_u64(9);
        let (set, stats) = DistributedDcc::new(4).run(&g, &boundary, &mut rng).unwrap();
        assert!(is_vpt_fixpoint(&g, &set.active, &boundary, 4));
        assert!(!set.deleted.is_empty());
        assert!(stats.deletion_rounds >= 1);
        assert!(stats.discovery_messages > 0);
        assert!(stats.election_messages > 0);
        assert!(stats.bytes > stats.total_messages(), "payloads cost more than a byte");
    }

    #[test]
    fn distributed_matches_centralized_size_envelope() {
        // Same fixpoint notion ⇒ sizes agree up to ordering effects; on the
        // symmetric king grid they agree exactly for most seeds. Assert a
        // tight envelope rather than equality.
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let (dist_set, _) = DistributedDcc::new(4).run(&g, &boundary, &mut rng).unwrap();
        let central = crate::schedule::DccScheduler::new(4).schedule(
            &g,
            &boundary,
            &mut StdRng::seed_from_u64(1),
        );
        let diff = dist_set.active_count().abs_diff(central.active_count());
        assert!(diff <= 3, "distributed {} vs centralized {}", dist_set.active_count(),
            central.active_count());
    }

    #[test]
    fn boundary_protected_in_distributed_run() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let (set, _) = DistributedDcc::new(3).run(&g, &boundary, &mut rng).unwrap();
        for (i, &b) in boundary.iter().enumerate() {
            if b {
                assert!(set.active.contains(&NodeId::from(i)));
            }
        }
    }

    #[test]
    fn no_candidates_terminates_immediately() {
        // All nodes boundary: zero deletion rounds, only one discovery.
        let g = generators::cycle_graph(6);
        let boundary = vec![true; 6];
        let mut rng = StdRng::seed_from_u64(0);
        let (set, stats) = DistributedDcc::new(3).run(&g, &boundary, &mut rng).unwrap();
        assert_eq!(set.active_count(), 6);
        assert_eq!(stats.deletion_rounds, 0);
        assert_eq!(stats.election_messages, 0);
        assert!(stats.discovery_messages > 0, "discovery still ran once");
    }

    #[test]
    fn round_limit_error_propagates() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let result = DistributedDcc::new(3).with_round_limit(1).run(&g, &boundary, &mut rng);
        assert!(matches!(result, Err(SimError::RoundLimitExceeded { limit: 1 })));
    }
}
