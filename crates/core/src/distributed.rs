//! The distributed DCC protocol (DCC-D), executed on the message-passing
//! simulator.
//!
//! Each deletion round of the paper's scheduler maps to two protocol phases
//! over the *current* active topology:
//!
//! 1. **Discovery** — every node floods its adjacency list `k = ⌈τ/2⌉` hops
//!    ([`confine_netsim::protocols::KHopDiscovery`]); each internal node
//!    reconstructs its punctured neighbourhood graph `Γ^k(v)` and evaluates
//!    the void preserving transformation locally.
//! 2. **Election** — deletable nodes draw random priorities and flood them
//!    `m = ⌈τ/2⌉ + 1` hops
//!    ([`confine_netsim::protocols::LocalMinElection`]); locally minimal
//!    candidates win and switch themselves off. Winners are `m`-hop
//!    independent, so their deletions are mutually safe (their punctured
//!    neighbourhoods are disjoint and unchanged by each other).
//!
//! Rounds repeat until no candidate exists. Whenever at least one candidate
//! exists, the globally minimal one wins its election, so the protocol makes
//! progress and terminates. The result coincides with a run of the
//! centralized scheduler with a particular deletion order, and retains every
//! guarantee of Theorems 5/6.
//!
//! # Faults
//!
//! `Dcc::builder(tau).link_model(..).fault_plan(..)` runs the same protocol
//! under a lossy [`LinkModel`] and a [`FaultPlan`] of crash-stop failures.
//! Discovery
//! switches to the loss-tolerant
//! [`confine_netsim::protocols::RepeatedDiscovery`], crashed nodes are
//! harvested from every phase and removed from the active topology, and an
//! election round whose winner crashed mid-flood is retried with fresh
//! priorities up to a bounded budget before the run aborts with
//! [`SimError::ElectionStalled`]. Post-schedule crashes are the domain of
//! [`crate::repair`].

use confine_graph::{Graph, GraphView, Masked, NodeId};
use confine_netsim::faults::FaultPlan;
use confine_netsim::protocols::{retry_jitter, KHopDiscovery, LocalMinElection, RepeatedDiscovery};
use confine_netsim::{Engine, LinkModel, RunStats, SimError};
use rand::Rng;

use crate::schedule::CoverageSet;
use crate::sharded::SweepEngine;
use crate::vpt::{independence_radius, neighborhood_radius};
use crate::vpt_engine::{EngineConfig, EvalJob, VptEngine};

/// Aggregate cost of a distributed run, per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributedStats {
    /// Deletion rounds executed (each = one discovery + one election).
    pub deletion_rounds: usize,
    /// Total communication rounds across all phases.
    pub comm_rounds: usize,
    /// Messages spent in discovery phases.
    pub discovery_messages: usize,
    /// Messages spent in election phases.
    pub election_messages: usize,
    /// Messages spent by the repair layer (heartbeats, wake floods and the
    /// local re-scheduling traffic of [`crate::repair`]).
    pub repair_messages: usize,
    /// Total payload bytes across all phases.
    pub bytes: usize,
    /// Messages lost in transit across all phases (loss, flaps, crashes).
    pub dropped: usize,
    /// Nodes that crash-stopped during the run.
    pub crashed: usize,
    /// Heartbeat false positives: times a node was suspected dead and then
    /// heard from again (live nodes silenced by loss, flaps or partitions).
    pub false_suspicions: usize,
}

impl DistributedStats {
    /// Total messages across all phases.
    pub fn total_messages(&self) -> usize {
        self.discovery_messages + self.election_messages + self.repair_messages
    }

    /// Folds another run's counters into this one (campaign aggregation
    /// across a schedule and its fault reactions).
    pub fn merge(&mut self, other: &DistributedStats) {
        self.deletion_rounds += other.deletion_rounds;
        self.comm_rounds += other.comm_rounds;
        self.discovery_messages += other.discovery_messages;
        self.election_messages += other.election_messages;
        self.repair_messages += other.repair_messages;
        self.bytes += other.bytes;
        self.dropped += other.dropped;
        self.crashed += other.crashed;
        self.false_suspicions += other.false_suspicions;
    }

    pub(crate) fn absorb_discovery(&mut self, stats: RunStats) {
        self.comm_rounds += stats.rounds;
        self.discovery_messages += stats.messages;
        self.bytes += stats.bytes;
        self.dropped += stats.dropped;
        self.crashed += stats.crashed;
    }

    pub(crate) fn absorb_election(&mut self, stats: RunStats) {
        self.comm_rounds += stats.rounds;
        self.election_messages += stats.messages;
        self.bytes += stats.bytes;
        self.dropped += stats.dropped;
        self.crashed += stats.crashed;
    }

    pub(crate) fn absorb_repair(&mut self, stats: RunStats) {
        self.comm_rounds += stats.rounds;
        self.repair_messages += stats.messages;
        self.bytes += stats.bytes;
        self.dropped += stats.dropped;
        self.crashed += stats.crashed;
    }
}

/// The distributed DCC scheduler.
///
/// # Example
///
/// ```
/// use confine_core::prelude::*;
/// use confine_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::wheel_graph(8);
/// let mut boundary = vec![false; 9];
/// for i in 1..=8 { boundary[i] = true; }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let (set, stats) = Dcc::builder(8).distributed()?.run(&g, &boundary, &mut rng)?;
/// assert_eq!(set.deleted, vec![confine_graph::NodeId(0)]);
/// assert!(stats.total_messages() > 0);
/// # Ok::<(), confine_netsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistributedDcc {
    tau: usize,
    max_comm_rounds: usize,
    link: LinkModel,
    faults: Option<FaultPlan>,
    discovery_repeats: u32,
    retry_budget: usize,
}

impl DistributedDcc {
    pub(crate) fn from_builder(
        tau: usize,
        max_comm_rounds: usize,
        link: LinkModel,
        faults: Option<FaultPlan>,
        discovery_repeats: u32,
        retry_budget: usize,
    ) -> Self {
        DistributedDcc {
            tau,
            max_comm_rounds,
            link,
            faults,
            discovery_repeats,
            retry_budget,
        }
    }

    /// Executes the protocol on `graph` with the given boundary flags.
    ///
    /// Nodes crashed by the fault plan are removed from the topology as the
    /// run progresses; they end up in neither `active` nor `deleted` of the
    /// returned set, and are counted in [`DistributedStats::crashed`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BoundaryMismatch`] if the flag slice does not
    /// cover the graph, [`SimError::RoundLimitExceeded`] if any phase fails
    /// to converge within the configured limit (bounded-diameter phases
    /// always converge in `k` resp. `m` rounds, so this indicates a
    /// configuration error), or [`SimError::ElectionStalled`] when crashes
    /// keep emptying the winner set past the retry budget.
    pub fn run<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        rng: &mut R,
    ) -> Result<(CoverageSet, DistributedStats), SimError> {
        let mut engine = VptEngine::new(self.tau, EngineConfig::default());
        self.run_with_engine(graph, boundary, &mut engine, rng)
    }

    /// [`DistributedDcc::run`] with a caller-owned [`VptEngine`] whose
    /// fingerprint memo persists across runs (the [`crate::dcc`] runner
    /// path).
    pub(crate) fn run_with_engine<R: Rng, E: SweepEngine>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        vpt: &mut E,
        rng: &mut R,
    ) -> Result<(CoverageSet, DistributedStats), SimError> {
        if boundary.len() != graph.node_count() {
            return Err(SimError::BoundaryMismatch {
                flags: boundary.len(),
                nodes: graph.node_count(),
            });
        }
        if self
            .faults
            .as_ref()
            .is_some_and(|p| p.recoveries().next().is_some())
        {
            // The initial schedule removes crashed nodes permanently; a node
            // that comes back mid-schedule would need the rejoin protocol.
            return Err(SimError::UnsupportedFault {
                what: "crash recovery during the initial schedule — \
                       rejoin is handled by the repair/chaos layer",
            });
        }
        let k = neighborhood_radius(self.tau);
        let m = independence_radius(self.tau);
        let lossy = !matches!(self.link, LinkModel::Reliable);
        let mut masked = Masked::all_active(graph);
        let mut plan = self.faults.clone();
        let mut elapsed = 0usize;
        let mut stats = DistributedStats::default();
        let mut deleted = Vec::new();

        'rounds: loop {
            // Phase 1: k-hop discovery + local VPT evaluation. Under loss,
            // the repeated variant keeps the punctured graphs near-complete;
            // verdicts of nodes that crashed mid-flood are discarded.
            let (run, crashed_now, mut deletable, any) = if lossy {
                let mut engine = Engine::new(&masked, |_| {
                    RepeatedDiscovery::new(k, self.discovery_repeats)
                })
                .with_link_model(self.link);
                if let Some(p) = plan.as_ref() {
                    engine = engine.with_faults(p.advanced(elapsed));
                }
                let run = engine.run(self.max_comm_rounds)?;
                let crashed_now = engine.crashed_nodes().to_vec();
                let (deletable, any) = local_verdicts(&masked, boundary, &crashed_now, vpt, |v| {
                    engine.state(v).map(|s| s.punctured_graph(v))
                });
                (run, crashed_now, deletable, any)
            } else {
                let mut engine = Engine::new(&masked, |_| KHopDiscovery::new(k));
                if let Some(p) = plan.as_ref() {
                    engine = engine.with_faults(p.advanced(elapsed));
                }
                let run = engine.run(self.max_comm_rounds)?;
                let crashed_now = engine.crashed_nodes().to_vec();
                let (deletable, any) = local_verdicts(&masked, boundary, &crashed_now, vpt, |v| {
                    engine.state(v).map(|s| s.punctured_graph(v))
                });
                (run, crashed_now, deletable, any)
            };
            stats.absorb_discovery(run);
            elapsed += run.rounds;
            for v in crashed_now {
                masked.deactivate(v);
                if let Some(p) = plan.as_mut() {
                    p.remove_crash(v);
                }
            }
            if !any {
                break;
            }

            // Phase 2: m-hop local-minimum election among candidates. The
            // globally minimal candidate always wins, so an empty winner set
            // means it crashed mid-election — retry with fresh priorities,
            // up to the budget.
            let mut retries = 0usize;
            let winners: Vec<NodeId> = loop {
                let mut priorities = vec![0.0f64; graph.node_count()];
                for v in masked.active_nodes() {
                    if deletable[v.index()] {
                        priorities[v.index()] = rng.gen();
                    }
                }
                // Retries stagger each candidate's re-announcement by a
                // deterministic per-node jitter (attempt 0 → no delay), so a
                // partition heal or a crashed-winner retry can't re-collide
                // every stalled candidate in the same round — the classic
                // synchronized retry storm. Replay stays bitwise identical:
                // the offset is a pure function of (node, attempt).
                let mut election = Engine::new(&masked, |v| {
                    LocalMinElection::with_start_delay(
                        m,
                        deletable[v.index()],
                        priorities[v.index()],
                        retry_jitter(v, retries, crate::config::ELECTION_JITTER_WINDOW),
                    )
                })
                .with_link_model(self.link);
                if let Some(p) = plan.as_ref() {
                    election = election.with_faults(p.advanced(elapsed));
                }
                let run = election.run(self.max_comm_rounds)?;
                elapsed += run.rounds;
                stats.absorb_election(run);
                let crashed_now = election.crashed_nodes().to_vec();
                let winners: Vec<NodeId> = masked
                    .active_nodes()
                    .filter(|&v| deletable[v.index()] && !crashed_now.contains(&v))
                    .filter(|&v| election.state(v).is_some_and(|s| s.is_winner(v)))
                    .collect();
                for v in crashed_now {
                    masked.deactivate(v);
                    if let Some(p) = plan.as_mut() {
                        p.remove_crash(v);
                    }
                    deletable[v.index()] = false;
                }
                if !winners.is_empty() {
                    break winners;
                }
                if !masked.active_nodes().any(|v| deletable[v.index()]) {
                    // Every candidate crashed: verdicts are stale, rediscover.
                    break Vec::new();
                }
                retries += 1;
                if retries > self.retry_budget {
                    return Err(SimError::ElectionStalled {
                        retries: self.retry_budget,
                    });
                }
            };
            if winners.is_empty() {
                continue 'rounds;
            }
            for v in winners {
                masked.deactivate(v);
                deleted.push(v);
            }
            stats.deletion_rounds += 1;
        }

        let set = CoverageSet {
            active: masked.active_nodes().collect(),
            deleted,
            rounds: stats.deletion_rounds,
        };
        Ok((set, stats))
    }
}

/// Evaluates the VPT verdict of every active non-boundary node from its
/// discovered punctured graph, skipping nodes in `skip` (crashed mid-phase).
/// Evaluation goes through the engine's memoizing, fanning-out job path.
pub(crate) fn local_verdicts<F, E: SweepEngine>(
    masked: &Masked<'_>,
    boundary: &[bool],
    skip: &[NodeId],
    engine: &mut E,
    mut punctured: F,
) -> (Vec<bool>, bool)
where
    F: FnMut(NodeId) -> Option<(Graph, Vec<NodeId>)>,
{
    let mut jobs = Vec::new();
    for v in masked.active_nodes() {
        if boundary[v.index()] || skip.contains(&v) {
            continue;
        }
        // A node whose discovery state is missing simply isn't a deletion
        // candidate this round (conservative: it stays awake).
        let Some((graph, members)) = punctured(v) else {
            continue;
        };
        jobs.push(EvalJob {
            node: v,
            members,
            graph,
        });
    }
    let verdicts = engine.evaluate_jobs(&jobs);
    let mut deletable = vec![false; boundary.len()];
    let mut any = false;
    for (job, ok) in jobs.iter().zip(verdicts.iter()) {
        if ok {
            deletable[job.node.index()] = true;
            any = true;
        }
    }
    (deletable, any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcc::Dcc;
    use crate::schedule::is_vpt_fixpoint;
    use confine_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn driver(tau: usize) -> crate::dcc::DistributedRunner {
        Dcc::builder(tau).distributed().unwrap()
    }

    fn king_boundary(w: usize, h: usize) -> Vec<bool> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect()
    }

    #[test]
    fn distributed_reaches_vpt_fixpoint() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let mut rng = StdRng::seed_from_u64(9);
        let (set, stats) = driver(4).run(&g, &boundary, &mut rng).unwrap();
        assert!(is_vpt_fixpoint(&g, &set.active, &boundary, 4));
        assert!(!set.deleted.is_empty());
        assert!(stats.deletion_rounds >= 1);
        assert!(stats.discovery_messages > 0);
        assert!(stats.election_messages > 0);
        assert!(
            stats.bytes > stats.total_messages(),
            "payloads cost more than a byte"
        );
    }

    #[test]
    fn distributed_matches_centralized_size_envelope() {
        // Same fixpoint notion ⇒ sizes agree up to ordering effects; on the
        // symmetric king grid they agree exactly for most seeds. Assert a
        // tight envelope rather than equality.
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let (dist_set, _) = driver(4).run(&g, &boundary, &mut rng).unwrap();
        let central = Dcc::builder(4)
            .centralized()
            .unwrap()
            .run(&g, &boundary, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let diff = dist_set.active_count().abs_diff(central.active_count());
        assert!(
            diff <= 3,
            "distributed {} vs centralized {}",
            dist_set.active_count(),
            central.active_count()
        );
    }

    #[test]
    fn boundary_protected_in_distributed_run() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let (set, _) = driver(3).run(&g, &boundary, &mut rng).unwrap();
        for (i, &b) in boundary.iter().enumerate() {
            if b {
                assert!(set.active.contains(&NodeId::from(i)));
            }
        }
    }

    #[test]
    fn no_candidates_terminates_immediately() {
        // All nodes boundary: zero deletion rounds, only one discovery.
        let g = generators::cycle_graph(6);
        let boundary = vec![true; 6];
        let mut rng = StdRng::seed_from_u64(0);
        let (set, stats) = driver(3).run(&g, &boundary, &mut rng).unwrap();
        assert_eq!(set.active_count(), 6);
        assert_eq!(stats.deletion_rounds, 0);
        assert_eq!(stats.election_messages, 0);
        assert!(stats.discovery_messages > 0, "discovery still ran once");
    }

    #[test]
    fn mid_schedule_recovery_is_rejected_with_a_typed_error() {
        use confine_netsim::faults::FaultPlan;
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(4);
        let plan = FaultPlan::new().crash(NodeId(12), 2).recover(NodeId(12), 6);
        let result = Dcc::builder(3)
            .fault_plan(plan)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng);
        assert!(matches!(result, Err(SimError::UnsupportedFault { .. })));
    }

    #[test]
    fn round_limit_error_propagates() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let result = Dcc::builder(3)
            .round_limit(1)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng);
        assert!(matches!(
            result,
            Err(SimError::RoundLimitExceeded { limit: 1 })
        ));
    }
}
