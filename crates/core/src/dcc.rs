//! Unified entry point for every DCC scheduling flavour.
//!
//! [`Dcc::builder`] is the sole constructor idiom: one builder carries
//! τ, the deletion order, the [`EngineConfig`] of the shared
//! [`VptEngine`], the fault plan and the energy bias, and yields
//! [`DccBuilder::centralized`], [`DccBuilder::distributed`],
//! [`DccBuilder::incremental`] and [`DccBuilder::repair`] runners. Every
//! runner owns its engine, so repeated runs on the same topology reuse the
//! fingerprint memo, and invalid configurations surface as typed
//! [`SimError`]s instead of panics.
//!
//! ```
//! use confine_core::prelude::*;
//! use confine_graph::generators;
//! use rand::SeedableRng;
//!
//! let g = generators::king_grid_graph(6, 6);
//! let boundary: Vec<bool> = (0..36)
//!     .map(|i| { let (x, y) = (i % 6, i / 6); x == 0 || y == 0 || x == 5 || y == 5 })
//!     .collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! let mut runner = Dcc::builder(4).threads(2).centralized()?;
//! let set = runner.run(&g, &boundary, &mut rng)?;
//! assert!(set.active_count() < 36, "some interior nodes sleep");
//!
//! // τ below the supported minimum is a typed error, not a panic.
//! assert!(matches!(
//!     Dcc::builder(2).centralized(),
//!     Err(SimError::InvalidTau { tau: 2, min: 3 })
//! ));
//! # Ok::<(), confine_netsim::SimError>(())
//! ```

use std::fmt;

use confine_graph::partition::RegionAssignment;
use confine_graph::{Graph, NodeId};
use confine_netsim::faults::FaultPlan;
use confine_netsim::{LinkModel, SimError};
use rand::Rng;

use crate::distributed::{DistributedDcc, DistributedStats};
use crate::incremental::IncrementalDcc;
use crate::repair::{CoverageRepair, ReconcileOutcome, RejoinOutcome, RejoinPolicy, RepairOutcome};
use crate::schedule::{run_schedule, CoverageSet, DeletionOrder};
use crate::sharded::{AnyEngine, SweepEngine};
use crate::vpt_engine::{EngineConfig, EngineStats};

type BiasFn = Box<dyn Fn(NodeId) -> f64 + Send + Sync>;

/// Namespace for the unified DCC builder; see the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct Dcc;

impl Dcc {
    /// Starts a builder for confine size `tau`.
    ///
    /// Validation happens in the finishers ([`DccBuilder::centralized`]
    /// etc.), which return [`SimError::InvalidTau`] for `tau < 3`.
    pub fn builder(tau: usize) -> DccBuilder {
        DccBuilder {
            tau,
            order: DeletionOrder::MisParallel,
            engine: EngineConfig::default(),
            link: LinkModel::Reliable,
            faults: None,
            round_limit: 10_000,
            discovery_repeats: crate::config::DEFAULT_DISCOVERY_REPEATS,
            retry_budget: crate::config::DEFAULT_RETRY_BUDGET,
            heartbeat_timeout: crate::config::DEFAULT_HEARTBEAT_TIMEOUT,
            comm_range: 1.0,
            bias: None,
            region_assignment: None,
        }
    }
}

/// Accumulates the configuration shared by all DCC flavours; finish with
/// [`DccBuilder::centralized`], [`DccBuilder::distributed`],
/// [`DccBuilder::incremental`] or [`DccBuilder::repair`].
pub struct DccBuilder {
    tau: usize,
    order: DeletionOrder,
    engine: EngineConfig,
    link: LinkModel,
    faults: Option<FaultPlan>,
    round_limit: usize,
    discovery_repeats: u32,
    retry_budget: usize,
    heartbeat_timeout: usize,
    comm_range: f64,
    bias: Option<BiasFn>,
    region_assignment: Option<RegionAssignment>,
}

impl fmt::Debug for DccBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DccBuilder")
            .field("tau", &self.tau)
            .field("order", &self.order)
            .field("engine", &self.engine)
            .field("link", &self.link)
            .field("faults", &self.faults.is_some())
            .field("round_limit", &self.round_limit)
            .field("discovery_repeats", &self.discovery_repeats)
            .field("retry_budget", &self.retry_budget)
            .field("heartbeat_timeout", &self.heartbeat_timeout)
            .field("comm_range", &self.comm_range)
            .field("bias", &self.bias.is_some())
            .field("region_assignment", &self.region_assignment.is_some())
            .finish()
    }
}

impl DccBuilder {
    /// Selects the deletion discipline (default
    /// [`DeletionOrder::MisParallel`]).
    pub fn order(mut self, order: DeletionOrder) -> Self {
        self.order = order;
        self
    }

    /// Worker threads for the VPT fan-out; `0` (the default) resolves to the
    /// machine's available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.engine.threads = threads;
        self
    }

    /// Disables the engine's verdict cache and fingerprint memo (every
    /// candidate re-evaluated from scratch; the benchmarking baseline).
    pub fn no_cache(mut self) -> Self {
        self.engine.cache = false;
        self
    }

    /// Replaces the whole engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine = config;
        self
    }

    /// Shards evaluation across `regions` spatial regions (`0` or `1`, the
    /// default, keeps the flat single-engine path). Without an explicit
    /// [`DccBuilder::region_assignment`], each run partitions its view by
    /// deterministic BFS stripes.
    pub fn regions(mut self, regions: usize) -> Self {
        self.engine.regions = regions;
        self
    }

    /// Worker threads per region for the sharded path; `0` (the default)
    /// divides the machine's available parallelism across the regions.
    pub fn region_threads(mut self, region_threads: usize) -> Self {
        self.engine.region_threads = region_threads;
        self
    }

    /// Pins the sharded engine to a caller-computed region assignment
    /// (e.g. `confine_deploy::partition::grid_assignment`); implies
    /// sharding with the assignment's region count.
    pub fn region_assignment(mut self, assignment: RegionAssignment) -> Self {
        self.engine.regions = assignment.regions();
        self.region_assignment = Some(assignment);
        self
    }

    /// Selects the link reliability model for the protocol-driven flavours
    /// (default [`LinkModel::Reliable`]).
    pub fn link_model(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Runs the protocol-driven flavours under this crash/flap/loss script.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the per-phase communication round limit (default 10 000).
    pub fn round_limit(mut self, limit: usize) -> Self {
        self.round_limit = limit;
        self
    }

    /// Overrides the rebroadcast count of the loss-tolerant discovery
    /// (default [`crate::config::DEFAULT_DISCOVERY_REPEATS`]).
    ///
    /// # Panics
    ///
    /// Panics if `repeats == 0`.
    pub fn discovery_repeats(mut self, repeats: u32) -> Self {
        assert!(repeats > 0, "need at least one transmission per record");
        self.discovery_repeats = repeats;
        self
    }

    /// Overrides the election retry budget (default
    /// [`crate::config::DEFAULT_RETRY_BUDGET`]).
    pub fn retry_budget(mut self, budget: usize) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Overrides the heartbeat silence timeout of the repair flavour
    /// (default [`crate::config::DEFAULT_HEARTBEAT_TIMEOUT`]).
    pub fn heartbeat_timeout(mut self, timeout: usize) -> Self {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Sets the communication range `Rc` used to scale the repair
    /// degradation bounds (default 1.0).
    pub fn comm_range(mut self, rc: f64) -> Self {
        self.comm_range = rc;
        self
    }

    /// Adds an additive deletion-priority bias to the centralized flavour —
    /// *smaller wins*, so low-bias nodes sleep preferentially (e.g. pass
    /// residual energy to spare depleted nodes).
    pub fn energy_bias<F>(mut self, bias: F) -> Self
    where
        F: Fn(NodeId) -> f64 + Send + Sync + 'static,
    {
        self.bias = Some(Box::new(bias));
        self
    }

    fn check_tau(&self) -> Result<(), SimError> {
        if self.tau < crate::config::MIN_TAU {
            return Err(SimError::InvalidTau {
                tau: self.tau,
                min: crate::config::MIN_TAU,
            });
        }
        Ok(())
    }

    fn make_engine(
        tau: usize,
        config: EngineConfig,
        assignment: Option<RegionAssignment>,
    ) -> AnyEngine {
        match assignment {
            Some(a) => AnyEngine::with_assignment(tau, config, a),
            None => AnyEngine::from_config(tau, config),
        }
    }

    /// Finishes into the centralized scheduler (the paper's reference
    /// algorithm, engine-accelerated).
    pub fn centralized(self) -> Result<CentralizedRunner, SimError> {
        self.check_tau()?;
        Ok(CentralizedRunner {
            order: self.order,
            engine: Self::make_engine(self.tau, self.engine, self.region_assignment),
            bias: self.bias,
        })
    }

    /// Finishes into the message-passing DCC-D protocol driver.
    pub fn distributed(self) -> Result<DistributedRunner, SimError> {
        self.check_tau()?;
        Ok(DistributedRunner {
            inner: DistributedDcc::from_builder(
                self.tau,
                self.round_limit,
                self.link,
                self.faults,
                self.discovery_repeats,
                self.retry_budget,
            ),
            engine: Self::make_engine(self.tau, self.engine, self.region_assignment),
        })
    }

    /// Finishes into the incremental (deletion-notice) protocol driver.
    pub fn incremental(self) -> Result<IncrementalRunner, SimError> {
        self.check_tau()?;
        Ok(IncrementalRunner {
            inner: IncrementalDcc::from_builder(self.tau, self.round_limit),
            engine: Self::make_engine(self.tau, self.engine, self.region_assignment),
        })
    }

    /// Finishes into the failure-adaptive coverage repair driver. A
    /// [`DccBuilder::fault_plan`] becomes the *ambient* environment every
    /// repair phase runs under (partitions, loss, flaps — crash entries
    /// stay the business of the explicit `crashed` argument).
    pub fn repair(self) -> Result<RepairRunner, SimError> {
        self.check_tau()?;
        Ok(RepairRunner {
            inner: CoverageRepair::from_builder(
                self.tau,
                self.heartbeat_timeout,
                self.round_limit,
                self.comm_range,
                self.faults.unwrap_or_default(),
            ),
            engine: Self::make_engine(self.tau, self.engine, self.region_assignment),
        })
    }
}

/// Engine-backed centralized DCC scheduler produced by
/// [`DccBuilder::centralized`].
///
/// Keep the runner alive across runs on the same topology: the engine's
/// fingerprint memo then answers recurring neighbourhood states without
/// re-running the Horton elimination.
pub struct CentralizedRunner {
    order: DeletionOrder,
    engine: AnyEngine,
    bias: Option<BiasFn>,
}

impl fmt::Debug for CentralizedRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralizedRunner")
            .field("order", &self.order)
            .field("engine", &self.engine)
            .field("bias", &self.bias.is_some())
            .finish()
    }
}

impl CentralizedRunner {
    /// Runs the schedule on `graph`; `boundary[i]` marks protected nodes.
    ///
    /// # Errors
    ///
    /// [`SimError::BoundaryMismatch`] if the flag slice does not cover the
    /// graph.
    pub fn run<R: Rng>(
        &mut self,
        graph: &Graph,
        boundary: &[bool],
        rng: &mut R,
    ) -> Result<CoverageSet, SimError> {
        self.run_excluding(graph, boundary, &[], rng)
    }

    /// Runs the schedule treating `excluded` nodes as already gone (dead
    /// batteries); they appear in neither `active` nor `deleted`.
    pub fn run_excluding<R: Rng>(
        &mut self,
        graph: &Graph,
        boundary: &[bool],
        excluded: &[NodeId],
        rng: &mut R,
    ) -> Result<CoverageSet, SimError> {
        let bias = &self.bias;
        run_schedule(
            graph,
            boundary,
            excluded,
            |v| bias.as_ref().map_or(0.0, |f| f(v)),
            self.order,
            &mut self.engine,
            rng,
        )
    }

    /// Counters of the underlying engine (flat or sharded).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

/// Distributed DCC-D runner produced by [`DccBuilder::distributed`].
#[derive(Debug)]
pub struct DistributedRunner {
    inner: DistributedDcc,
    engine: AnyEngine,
}

impl DistributedRunner {
    /// Executes the protocol on `graph` with the given boundary flags; see
    /// [`DistributedDcc`] for the phase structure and error conditions.
    pub fn run<R: Rng>(
        &mut self,
        graph: &Graph,
        boundary: &[bool],
        rng: &mut R,
    ) -> Result<(CoverageSet, DistributedStats), SimError> {
        self.inner
            .run_with_engine(graph, boundary, &mut self.engine, rng)
    }

    /// Counters of the underlying engine (flat or sharded).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

/// Incremental DCC-D runner produced by [`DccBuilder::incremental`].
#[derive(Debug)]
pub struct IncrementalRunner {
    inner: IncrementalDcc,
    engine: AnyEngine,
}

impl IncrementalRunner {
    /// Executes the protocol on `graph` with the given boundary flags; see
    /// [`IncrementalDcc`] for the phase structure and error conditions.
    pub fn run<R: Rng>(
        &mut self,
        graph: &Graph,
        boundary: &[bool],
        rng: &mut R,
    ) -> Result<(CoverageSet, DistributedStats), SimError> {
        self.inner
            .run_with_engine(graph, boundary, &mut self.engine, rng)
    }

    /// Counters of the underlying engine (flat or sharded).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

/// Coverage-repair runner produced by [`DccBuilder::repair`].
#[derive(Debug)]
pub struct RepairRunner {
    inner: CoverageRepair,
    engine: AnyEngine,
}

impl RepairRunner {
    /// Detects the crash of `crashed`, wakes its `k`-ball and prunes back to
    /// a global VPT fixpoint; see [`CoverageRepair`] for phases, errors and
    /// panics.
    pub fn repair<R: Rng>(
        &mut self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        crashed: NodeId,
        rng: &mut R,
    ) -> Result<RepairOutcome, SimError> {
        self.inner
            .repair_with_engine(graph, boundary, active, crashed, &mut self.engine, rng)
    }

    /// Re-enters a crash-recovered `node` with its pre-crash active-set
    /// `snapshot` under the given [`RejoinPolicy`]; see
    /// [`CoverageRepair::rejoin`].
    #[allow(clippy::too_many_arguments)]
    pub fn rejoin<R: Rng>(
        &mut self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        node: NodeId,
        snapshot: &[NodeId],
        policy: RejoinPolicy,
        rng: &mut R,
    ) -> Result<RejoinOutcome, SimError> {
        self.inner.rejoin_with_engine(
            graph,
            boundary,
            active,
            node,
            snapshot,
            policy,
            &mut self.engine,
            rng,
        )
    }

    /// Reconciles the schedule around `dirty` seeds (the post-heal pass
    /// after a partition); see [`CoverageRepair::reconcile`].
    pub fn reconcile<R: Rng>(
        &mut self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        dirty: &[NodeId],
        rng: &mut R,
    ) -> Result<ReconcileOutcome, SimError> {
        self.inner
            .reconcile_with_engine(graph, boundary, active, dirty, &mut self.engine, rng)
    }

    /// Counters of the underlying engine (flat or sharded).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confine_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn king_boundary(w: usize, h: usize) -> Vec<bool> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect()
    }

    #[test]
    fn builder_rejects_bad_inputs_with_typed_errors() {
        assert!(matches!(
            Dcc::builder(2).centralized(),
            Err(SimError::InvalidTau { tau: 2, min: 3 })
        ));
        assert!(matches!(
            Dcc::builder(0).distributed(),
            Err(SimError::InvalidTau { tau: 0, min: 3 })
        ));
        assert!(matches!(
            Dcc::builder(1).incremental(),
            Err(SimError::InvalidTau { .. })
        ));
        assert!(matches!(
            Dcc::builder(2).repair(),
            Err(SimError::InvalidTau { .. })
        ));
        let g = generators::path_graph(3);
        let mut rng = StdRng::seed_from_u64(0);
        let err = Dcc::builder(3)
            .centralized()
            .unwrap()
            .run(&g, &[true], &mut rng)
            .unwrap_err();
        assert_eq!(err, SimError::BoundaryMismatch { flags: 1, nodes: 3 });
    }

    #[test]
    fn centralized_runner_matches_reference_schedule() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let mut new_rng = StdRng::seed_from_u64(21);
        let set = Dcc::builder(4)
            .centralized()
            .unwrap()
            .run(&g, &boundary, &mut new_rng)
            .unwrap();
        let reference = crate::schedule::reference_schedule(
            &g,
            &boundary,
            4,
            DeletionOrder::MisParallel,
            &mut StdRng::seed_from_u64(21),
        )
        .unwrap();
        assert_eq!(set.active, reference.active, "same RNG ⇒ same coverage set");
        assert_eq!(set.deleted, reference.deleted);
        assert_eq!(set.rounds, reference.rounds);
    }

    #[test]
    fn energy_bias_spares_high_energy_nodes_last() {
        // Bias two interior nodes very low: they must be deleted before any
        // unbiased interior node can win a sequential election.
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let favoured = NodeId(12);
        let mut runner = Dcc::builder(4)
            .order(DeletionOrder::Sequential)
            .energy_bias(move |v| if v == favoured { 10.0 } else { 0.0 })
            .centralized()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let set = runner.run(&g, &boundary, &mut rng).unwrap();
        if let Some(pos) = set.deleted.iter().position(|&v| v == favoured) {
            assert_eq!(
                pos,
                set.deleted.len() - 1,
                "the favoured node must sleep last if at all"
            );
        }
    }

    #[test]
    fn runner_reuse_keeps_results_stable() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let mut runner = Dcc::builder(4).centralized().unwrap();
        let a = runner
            .run(&g, &boundary, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let evals_first = runner.engine_stats().evaluations;
        let b = runner
            .run(&g, &boundary, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(a.active, b.active);
        assert_eq!(a.deleted, b.deleted);
        assert!(
            runner.engine_stats().evaluations < 2 * evals_first,
            "second run must lean on the fingerprint memo"
        );
    }
}
