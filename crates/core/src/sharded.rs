//! Hierarchical sharded evaluation: per-region [`VptEngine`]s with
//! halo-stitched boundaries.
//!
//! # Why sharding is sound
//!
//! The VPT deletability verdict of a node `v` is a pure function of the
//! induced subgraph on `N_k(v) \ {v}` with `k = ⌈τ/2⌉`
//! ([`crate::vpt::neighborhood_radius`]). The schedule loop — candidate
//! election, RNG draws, MIS winners — consumes only *verdicts*, so **any**
//! engine that returns correct verdicts yields a bitwise-identical sweep.
//! Sharding therefore changes where verdicts are computed and cached, never
//! what they are:
//!
//! * the deployment is partitioned into regions (geometry-aware grid split
//!   from `confine-deploy`, or the topology-only
//!   [`confine_graph::partition::bfs_stripes`] fallback);
//! * each region gets its own [`VptEngine`] — scratch arenas, round-valid
//!   verdict cache and fingerprint memo — and evaluates exactly the
//!   candidates whose **owner region** it is, *reading the global view*:
//!   a ball that crosses a region boundary simply reaches into the
//!   neighbouring region's territory, which is the engine-side realisation
//!   of the m-hop **stitching halo**
//!   ([`confine_graph::partition::region_halos`]);
//! * membership changes are routed to exactly the regions owning a node of
//!   the change's `k`-ball: if the deletion of `v` can flip the cached
//!   verdict of `w`, then `w ∈ N_k(v)`, so the owner of `w` receives the
//!   invalidation — regions whose halo the change does not touch never see
//!   it.
//!
//! Inter-region cut cycles need no special casing for the same reason
//! multi-boundary areas need none in `confine-cycles`: the punctured-ball
//! extraction always runs on the full view, so every irreducible cycle a
//! flat engine would see — including those crossing a region cut — appears
//! verbatim in the regional evaluation. The `strict-invariants` feature
//! additionally audits the stitching invariant at runtime: sampled balls of
//! core nodes must stay inside their region's halo (locality), and the
//! per-region engines inherit the flat engine's cached-versus-fresh verdict
//! audit.

use confine_graph::partition::{self, NodeBitSet, RegionAssignment};
use confine_graph::{GraphView, NodeId};

use crate::vpt::{independence_radius, neighborhood_radius, VptScratch};
use crate::vpt_engine::{run_jobs, EngineConfig, EngineStats, EvalJob, VerdictBits, VptEngine};

/// The engine surface the schedulers drive — implemented by the flat
/// [`VptEngine`], the regional [`ShardedEngine`] and the [`AnyEngine`]
/// dispatcher, with identical observable behaviour (verdicts are pure).
pub trait SweepEngine {
    /// The confine size `τ` the engine evaluates for.
    fn tau(&self) -> usize;

    /// Whether the verdict caches are enabled.
    fn cache_enabled(&self) -> bool;

    /// Prepares for a scheduling run over `node_bound` node slots.
    fn begin_run(&mut self, node_bound: usize);

    /// Filters `eligible` down to the VPT-deletable candidates, preserving
    /// the caller's order.
    fn deletable_candidates<V: GraphView + Sync>(
        &mut self,
        view: &V,
        eligible: &[NodeId],
    ) -> Vec<NodeId>;

    /// Evaluates caller-materialised punctured subgraphs; returns verdicts
    /// in job order.
    fn evaluate_jobs(&mut self, jobs: &[EvalJob]) -> VerdictBits;

    /// Records that `v` is about to be deactivated on `view`.
    fn note_deletion<V: GraphView + Sync>(&mut self, view: &V, v: NodeId);

    /// Records that `v` was just activated on `view`.
    fn note_wake<V: GraphView + Sync>(&mut self, view: &V, v: NodeId);

    /// Records a batch of simultaneous deactivations (one MIS round). The
    /// nodes are pairwise ≥ `m = k + 1` hops apart, so their `k`-balls are
    /// unaffected by each other's removal and the batch is equivalent to
    /// any sequential interleaving of the individual notes.
    fn note_deletions<V: GraphView + Sync>(&mut self, view: &V, nodes: &[NodeId]) {
        for &v in nodes {
            self.note_deletion(view, v);
        }
    }

    /// Counters accumulated since construction or the last reset.
    fn stats(&self) -> EngineStats;

    /// Zeroes the counters.
    fn reset_stats(&mut self);
}

impl SweepEngine for VptEngine {
    fn tau(&self) -> usize {
        VptEngine::tau(self)
    }

    fn cache_enabled(&self) -> bool {
        VptEngine::cache_enabled(self)
    }

    fn begin_run(&mut self, node_bound: usize) {
        VptEngine::begin_run(self, node_bound);
    }

    fn deletable_candidates<V: GraphView + Sync>(
        &mut self,
        view: &V,
        eligible: &[NodeId],
    ) -> Vec<NodeId> {
        VptEngine::deletable_candidates(self, view, eligible)
    }

    fn evaluate_jobs(&mut self, jobs: &[EvalJob]) -> VerdictBits {
        VptEngine::evaluate_jobs(self, jobs)
    }

    fn note_deletion<V: GraphView + Sync>(&mut self, view: &V, v: NodeId) {
        VptEngine::note_deletion(self, view, v);
    }

    fn note_wake<V: GraphView + Sync>(&mut self, view: &V, v: NodeId) {
        VptEngine::note_wake(self, view, v);
    }

    fn stats(&self) -> EngineStats {
        VptEngine::stats(self)
    }

    fn reset_stats(&mut self) {
        VptEngine::reset_stats(self);
    }
}

/// Region-parallel evaluation engine: one [`VptEngine`] per region, a
/// deterministic node→region assignment, and exact ball-based delta routing.
/// See the [module docs](self) for the stitching argument.
///
/// Sweeps are bitwise-identical to the flat engine's for the same RNG —
/// asserted by the `sharded_identity` proptests and the `bench_vpt`
/// co-runs.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    tau: usize,
    k: u32,
    m: u32,
    cache: bool,
    region_threads: usize,
    /// One flat engine per region; worker `r` owns the verdicts and memo of
    /// every node assigned to region `r`.
    workers: Vec<VptEngine>,
    /// Caller-pinned spatial assignment (e.g. a deploy-side grid split);
    /// when absent, a BFS-stripe partition is computed per run.
    fixed: Option<RegionAssignment>,
    /// The assignment in force for the current run, established lazily at
    /// the first call that sees a view.
    assignment: Option<RegionAssignment>,
    /// Closed m-hop halos per region, computed alongside the assignment —
    /// the stitching band the strict-invariants audit checks balls against.
    halos: Vec<NodeBitSet>,
    /// Ball-BFS arenas for delta routing, one per region so a whole MIS
    /// round's invalidation balls extract in parallel.
    route: Vec<VptScratch>,
}

impl ShardedEngine {
    /// Creates a sharded engine with `config.regions` regions (at least
    /// one); the per-run partition is the deterministic BFS-stripe split of
    /// the view. `config.region_threads == 0` divides the machine's
    /// available parallelism evenly across the regions.
    pub fn new(tau: usize, config: EngineConfig) -> Self {
        Self::build(tau, config, config.regions.max(1), None)
    }

    /// Creates a sharded engine over a caller-supplied (typically spatial)
    /// region assignment; the region count is the assignment's.
    pub fn with_assignment(tau: usize, config: EngineConfig, assignment: RegionAssignment) -> Self {
        let regions = assignment.regions();
        Self::build(tau, config, regions, Some(assignment))
    }

    fn build(
        tau: usize,
        config: EngineConfig,
        regions: usize,
        fixed: Option<RegionAssignment>,
    ) -> Self {
        let region_threads = if config.region_threads == 0 {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (cores / regions).max(1)
        } else {
            config.region_threads
        };
        let worker_config = EngineConfig {
            threads: region_threads,
            cache: config.cache,
            regions: 0,
            region_threads: 0,
        };
        ShardedEngine {
            tau,
            k: neighborhood_radius(tau),
            m: independence_radius(tau),
            cache: config.cache,
            region_threads,
            workers: (0..regions)
                .map(|_| VptEngine::new(tau, worker_config))
                .collect(),
            fixed,
            assignment: None,
            halos: Vec::new(),
            route: (0..regions).map(|_| VptScratch::default()).collect(),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.workers.len()
    }

    /// Resolved worker threads per region.
    pub fn region_threads(&self) -> usize {
        self.region_threads
    }

    /// The assignment in force for the current run (None before the first
    /// evaluation of a run).
    pub fn assignment(&self) -> Option<&RegionAssignment> {
        self.assignment.as_ref()
    }

    /// Closed m-hop halo population per region for the current run (empty
    /// before the first evaluation).
    pub fn halo_counts(&self) -> Vec<usize> {
        self.halos.iter().map(NodeBitSet::count).collect()
    }

    /// Establishes the region assignment and stitching halos for this run
    /// from the first view an evaluation sees. Sound for the whole run:
    /// deletions only lengthen distances, so halos computed here remain
    /// supersets of every later ball.
    fn ensure_partition<V: GraphView>(&mut self, view: &V) {
        if self.assignment.is_some() {
            return;
        }
        let assignment = match &self.fixed {
            Some(a) if a.node_bound() == view.node_bound() => a.clone(),
            _ => partition::bfs_stripes(view, self.workers.len()),
        };
        self.halos = partition::region_halos(view, &assignment, self.m);
        self.assignment = Some(assignment);
    }
}

/// Owner region of `v`: its assigned region, or a stable fallback for nodes
/// outside the assignment (woken after partitioning, or protocol jobs ahead
/// of any view). The fallback only picks *where* a verdict is cached — both
/// the evaluation and invalidation paths route through this same function,
/// so cache placement stays coherent.
fn owner_of(assignment: Option<&RegionAssignment>, regions: usize, v: NodeId) -> usize {
    assignment
        .and_then(|a| a.region_of(v))
        .map_or_else(|| v.index() % regions, |r| r.min(regions - 1))
}

impl SweepEngine for ShardedEngine {
    fn tau(&self) -> usize {
        self.tau
    }

    fn cache_enabled(&self) -> bool {
        self.cache
    }

    fn begin_run(&mut self, node_bound: usize) {
        // Repartition per run: the active set is about to change wholesale.
        self.assignment = None;
        self.halos.clear();
        for w in &mut self.workers {
            w.begin_run(node_bound);
        }
    }

    fn deletable_candidates<V: GraphView + Sync>(
        &mut self,
        view: &V,
        eligible: &[NodeId],
    ) -> Vec<NodeId> {
        self.ensure_partition(view);
        let regions = self.workers.len();
        if regions == 1 {
            return self.workers[0].deletable_candidates(view, eligible);
        }
        let assignment = self.assignment.as_ref();
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); regions];
        let mut origins: Vec<Vec<usize>> = vec![Vec::new(); regions];
        for (i, &v) in eligible.iter().enumerate() {
            let r = owner_of(assignment, regions, v);
            groups[r].push(v);
            origins[r].push(i);
        }
        let mut flags: Vec<Option<Vec<bool>>> = (0..regions).map(|_| None).collect();
        std::thread::scope(|s| {
            for ((worker, group), slot) in
                self.workers.iter_mut().zip(&groups).zip(flags.iter_mut())
            {
                if group.is_empty() {
                    *slot = Some(Vec::new());
                    continue;
                }
                s.spawn(move || {
                    // The regional engine reads the *global* view: balls
                    // crossing the region cut reach into the neighbour's
                    // halo, so the verdict equals the flat engine's.
                    let dels = worker.deletable_candidates(view, group);
                    let mut di = 0usize;
                    let keep: Vec<bool> = group
                        .iter()
                        .map(|&v| {
                            if di < dels.len() && dels[di] == v {
                                di += 1;
                                true
                            } else {
                                false
                            }
                        })
                        .collect();
                    *slot = Some(keep);
                });
            }
        });
        let mut keep = vec![false; eligible.len()];
        for (origin, region_flags) in origins.iter().zip(&flags) {
            // lint: panic-ok(every region slot is filled before the scope joins)
            let region_flags = region_flags.as_ref().expect("region evaluated");
            for (&i, &b) in origin.iter().zip(region_flags) {
                keep[i] = b;
            }
        }

        #[cfg(feature = "strict-invariants")]
        {
            // Stitching audit: the k-ball of a sampled assigned node must
            // lie inside its owner region's closed m-hop halo — the
            // locality invariant that licenses routing this node's
            // evaluation and invalidation to that single region.
            let assignment = self.assignment.as_ref();
            for &v in eligible.iter().step_by(64) {
                let Some(r) = assignment.and_then(|a| a.region_of(v)) else {
                    continue;
                };
                let ball = self.route[0].hood.ball_members(view, v, self.k);
                for &w in ball {
                    assert!(
                        self.halos[r].contains(w),
                        "strict-invariants: ball of node {v:?} escapes the stitching halo of its region {r}"
                    );
                }
            }
        }

        eligible
            .iter()
            .zip(&keep)
            .filter(|&(_, &b)| b)
            .map(|(&v, _)| v)
            .collect()
    }

    fn evaluate_jobs(&mut self, jobs: &[EvalJob]) -> VerdictBits {
        let regions = self.workers.len();
        if regions == 1 {
            return self.workers[0].evaluate_jobs(jobs);
        }
        let assignment = self.assignment.as_ref();
        let mut groups: Vec<Vec<&EvalJob>> = vec![Vec::new(); regions];
        let mut origins: Vec<Vec<usize>> = vec![Vec::new(); regions];
        for (i, job) in jobs.iter().enumerate() {
            let r = owner_of(assignment, regions, job.node);
            groups[r].push(job);
            origins[r].push(i);
        }
        let mut outs: Vec<Option<VerdictBits>> = (0..regions).map(|_| None).collect();
        std::thread::scope(|s| {
            for ((worker, group), slot) in self.workers.iter_mut().zip(&groups).zip(outs.iter_mut())
            {
                if group.is_empty() {
                    *slot = Some(VerdictBits::default());
                    continue;
                }
                s.spawn(move || {
                    *slot = Some(worker.evaluate_job_refs(group));
                });
            }
        });
        let mut merged = vec![false; jobs.len()];
        for (origin, out) in origins.iter().zip(&outs) {
            // lint: panic-ok(every region slot is filled before the scope joins)
            let out = out.as_ref().expect("region evaluated");
            for (&i, b) in origin.iter().zip(out.iter()) {
                merged[i] = b;
            }
        }
        let mut bits = VerdictBits::with_capacity(jobs.len());
        for b in merged {
            bits.push(b);
        }
        bits
    }

    fn note_deletion<V: GraphView + Sync>(&mut self, view: &V, v: NodeId) {
        if !self.cache {
            return;
        }
        self.ensure_partition(view);
        let regions = self.workers.len();
        let ball = self.route[0].hood.ball_members(view, v, self.k);
        route_invalidation(
            self.assignment.as_ref(),
            &mut self.workers,
            regions,
            v,
            ball,
        );
    }

    fn note_wake<V: GraphView + Sync>(&mut self, view: &V, v: NodeId) {
        // The post-wake ball covers exactly the nodes that can now reach
        // `v` within k hops; routing by the owners of its members is exact
        // even when the wake lands outside the run-start halos.
        self.note_deletion(view, v);
    }

    fn note_deletions<V: GraphView + Sync>(&mut self, view: &V, nodes: &[NodeId]) {
        if !self.cache || nodes.is_empty() {
            return;
        }
        self.ensure_partition(view);
        let k = self.k;
        // One MIS round's invalidation balls extract in parallel across the
        // routing arenas; the (cheap) cache clears then run serially.
        let balls = run_jobs(nodes, &mut self.route, |&v, scratch| {
            scratch.hood.ball_members(view, v, k).to_vec()
        });
        let regions = self.workers.len();
        for (&v, ball) in nodes.iter().zip(&balls) {
            route_invalidation(
                self.assignment.as_ref(),
                &mut self.workers,
                regions,
                v,
                ball,
            );
        }
    }

    fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for w in &self.workers {
            let s = w.stats();
            total.evaluations += s.evaluations;
            total.round_hits += s.round_hits;
            total.memo_hits += s.memo_hits;
            total.invalidations += s.invalidations;
        }
        total
    }

    fn reset_stats(&mut self) {
        for w in &mut self.workers {
            w.reset_stats();
        }
    }
}

/// Clears the round verdicts of `ball ∪ {v}` in exactly the regions owning
/// one of those nodes. Exact, not conservative: a change at `v` can flip
/// only verdicts of nodes in `ball = N_k(v)`, each cached solely in its
/// owner region.
fn route_invalidation(
    assignment: Option<&RegionAssignment>,
    workers: &mut [VptEngine],
    regions: usize,
    v: NodeId,
    ball: &[NodeId],
) {
    let mut affected: Vec<usize> = ball
        .iter()
        .chain(std::iter::once(&v))
        .map(|&w| owner_of(assignment, regions, w))
        .collect();
    affected.sort_unstable();
    affected.dedup();
    for r in affected {
        workers[r].invalidate_nodes(ball);
        workers[r].invalidate_nodes(&[v]);
    }
}

/// Static dispatch over the flat and sharded engines — what the
/// [`crate::dcc::Dcc`] runners hold, so one builder serves both paths
/// without generics in the public runner types.
#[derive(Debug, Clone)]
pub enum AnyEngine {
    /// The flat single-engine path.
    Flat(VptEngine),
    /// The region-parallel sharded path.
    Sharded(ShardedEngine),
}

impl AnyEngine {
    /// Builds the engine the configuration asks for: sharded when
    /// `config.regions > 1`, flat otherwise.
    pub fn from_config(tau: usize, config: EngineConfig) -> Self {
        if config.regions > 1 {
            AnyEngine::Sharded(ShardedEngine::new(tau, config))
        } else {
            AnyEngine::Flat(VptEngine::new(tau, config))
        }
    }

    /// Builds a sharded engine over a caller-pinned region assignment.
    pub fn with_assignment(tau: usize, config: EngineConfig, assignment: RegionAssignment) -> Self {
        AnyEngine::Sharded(ShardedEngine::with_assignment(tau, config, assignment))
    }
}

impl SweepEngine for AnyEngine {
    fn tau(&self) -> usize {
        match self {
            AnyEngine::Flat(e) => SweepEngine::tau(e),
            AnyEngine::Sharded(e) => SweepEngine::tau(e),
        }
    }

    fn cache_enabled(&self) -> bool {
        match self {
            AnyEngine::Flat(e) => SweepEngine::cache_enabled(e),
            AnyEngine::Sharded(e) => SweepEngine::cache_enabled(e),
        }
    }

    fn begin_run(&mut self, node_bound: usize) {
        match self {
            AnyEngine::Flat(e) => SweepEngine::begin_run(e, node_bound),
            AnyEngine::Sharded(e) => SweepEngine::begin_run(e, node_bound),
        }
    }

    fn deletable_candidates<V: GraphView + Sync>(
        &mut self,
        view: &V,
        eligible: &[NodeId],
    ) -> Vec<NodeId> {
        match self {
            AnyEngine::Flat(e) => SweepEngine::deletable_candidates(e, view, eligible),
            AnyEngine::Sharded(e) => SweepEngine::deletable_candidates(e, view, eligible),
        }
    }

    fn evaluate_jobs(&mut self, jobs: &[EvalJob]) -> VerdictBits {
        match self {
            AnyEngine::Flat(e) => SweepEngine::evaluate_jobs(e, jobs),
            AnyEngine::Sharded(e) => SweepEngine::evaluate_jobs(e, jobs),
        }
    }

    fn note_deletion<V: GraphView + Sync>(&mut self, view: &V, v: NodeId) {
        match self {
            AnyEngine::Flat(e) => SweepEngine::note_deletion(e, view, v),
            AnyEngine::Sharded(e) => SweepEngine::note_deletion(e, view, v),
        }
    }

    fn note_wake<V: GraphView + Sync>(&mut self, view: &V, v: NodeId) {
        match self {
            AnyEngine::Flat(e) => SweepEngine::note_wake(e, view, v),
            AnyEngine::Sharded(e) => SweepEngine::note_wake(e, view, v),
        }
    }

    fn note_deletions<V: GraphView + Sync>(&mut self, view: &V, nodes: &[NodeId]) {
        match self {
            AnyEngine::Flat(e) => SweepEngine::note_deletions(e, view, nodes),
            AnyEngine::Sharded(e) => SweepEngine::note_deletions(e, view, nodes),
        }
    }

    fn stats(&self) -> EngineStats {
        match self {
            AnyEngine::Flat(e) => SweepEngine::stats(e),
            AnyEngine::Sharded(e) => SweepEngine::stats(e),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            AnyEngine::Flat(e) => SweepEngine::reset_stats(e),
            AnyEngine::Sharded(e) => SweepEngine::reset_stats(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpt::is_vertex_deletable;
    use confine_graph::{generators, Masked};

    fn fresh(masked: &Masked<'_>, eligible: &[NodeId], tau: usize) -> Vec<NodeId> {
        eligible
            .iter()
            .copied()
            .filter(|&v| is_vertex_deletable(masked, v, tau))
            .collect()
    }

    #[test]
    fn sharded_candidates_match_fresh_evaluation_across_deletions() {
        let g = generators::king_grid_graph(8, 8);
        for regions in [1usize, 2, 4] {
            let mut masked = Masked::all_active(&g);
            let config = EngineConfig::builder()
                .regions(regions)
                .region_threads(1)
                .build();
            let mut engine = ShardedEngine::new(4, config);
            assert_eq!(engine.regions(), regions);
            SweepEngine::begin_run(&mut engine, g.node_count());
            for _ in 0..5 {
                let eligible: Vec<NodeId> = masked.active_nodes().collect();
                let got = SweepEngine::deletable_candidates(&mut engine, &masked, &eligible);
                assert_eq!(got, fresh(&masked, &eligible, 4), "regions = {regions}");
                let Some(&v) = got.first() else { break };
                SweepEngine::note_deletion(&mut engine, &masked, v);
                masked.deactivate(v);
            }
        }
    }

    #[test]
    fn batched_round_notes_match_individual_notes() {
        let g = generators::king_grid_graph(9, 9);
        let masked = Masked::all_active(&g);
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        let config = EngineConfig::builder().regions(3).region_threads(1).build();
        let mut batch = ShardedEngine::new(4, config);
        let mut single = ShardedEngine::new(4, config);
        for e in [&mut batch, &mut single] {
            SweepEngine::begin_run(e, g.node_count());
            SweepEngine::deletable_candidates(e, &masked, &eligible);
        }
        // Two far-apart deletions, as one MIS round would issue them.
        let round = [NodeId(10), NodeId(70)];
        SweepEngine::note_deletions(&mut batch, &masked, &round);
        for &v in &round {
            SweepEngine::note_deletion(&mut single, &masked, v);
        }
        let mut after = Masked::all_active(&g);
        for &v in &round {
            after.deactivate(v);
        }
        let eligible: Vec<NodeId> = after.active_nodes().collect();
        assert_eq!(
            SweepEngine::deletable_candidates(&mut batch, &after, &eligible),
            SweepEngine::deletable_candidates(&mut single, &after, &eligible),
        );
        assert_eq!(SweepEngine::stats(&batch), SweepEngine::stats(&single));
    }

    #[test]
    fn sharded_evaluate_jobs_matches_flat() {
        use crate::vpt::induced_from_view;
        use confine_graph::traverse;
        let g = generators::king_grid_graph(7, 7);
        let jobs: Vec<EvalJob> = g
            .nodes()
            .map(|v| {
                let ball = traverse::k_hop_neighbors(&g, v, neighborhood_radius(4));
                let (graph, members) = induced_from_view(&g, &ball);
                EvalJob {
                    node: v,
                    members,
                    graph,
                }
            })
            .collect();
        let mut flat = VptEngine::new(4, EngineConfig::default());
        let config = EngineConfig::builder().regions(4).region_threads(1).build();
        let mut sharded = ShardedEngine::new(4, config);
        let a = flat.evaluate_jobs(&jobs);
        let b = SweepEngine::evaluate_jobs(&mut sharded, &jobs);
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_assignment_and_halos_are_exposed() {
        let g = generators::king_grid_graph(6, 6);
        let masked = Masked::all_active(&g);
        let asg = partition::bfs_stripes(&masked, 2);
        let config = EngineConfig::builder().region_threads(1).build();
        let mut engine = ShardedEngine::with_assignment(4, config, asg.clone());
        assert_eq!(engine.regions(), 2);
        assert!(engine.assignment().is_none(), "partition is lazy");
        SweepEngine::begin_run(&mut engine, g.node_count());
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        SweepEngine::deletable_candidates(&mut engine, &masked, &eligible);
        assert_eq!(engine.assignment(), Some(&asg));
        let halos = engine.halo_counts();
        assert_eq!(halos.len(), 2);
        let counts = asg.counts();
        for (h, c) in halos.iter().zip(&counts) {
            assert!(h >= c, "closed halo contains the core");
        }
    }

    #[test]
    fn any_engine_dispatches_both_paths() {
        let g = generators::king_grid_graph(6, 6);
        let masked = Masked::all_active(&g);
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        let flat_cfg = EngineConfig::default();
        let shard_cfg = EngineConfig::builder().regions(2).region_threads(1).build();
        let mut flat = AnyEngine::from_config(4, flat_cfg);
        let mut sharded = AnyEngine::from_config(4, shard_cfg);
        assert!(matches!(flat, AnyEngine::Flat(_)));
        assert!(matches!(sharded, AnyEngine::Sharded(_)));
        assert_eq!(SweepEngine::tau(&flat), 4);
        assert!(SweepEngine::cache_enabled(&sharded));
        flat.begin_run(g.node_count());
        sharded.begin_run(g.node_count());
        assert_eq!(
            flat.deletable_candidates(&masked, &eligible),
            sharded.deletable_candidates(&masked, &eligible),
        );
        assert!(SweepEngine::stats(&sharded).evaluations > 0);
        sharded.reset_stats();
        assert_eq!(SweepEngine::stats(&sharded), EngineStats::default());
    }
}
