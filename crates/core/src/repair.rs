//! Failure-adaptive coverage repair (robustness extension beyond the paper).
//!
//! The DCC scheduler produces a *static* active set; a crash-stop failure of
//! an active node afterwards can open a coverage hole the paper's guarantees
//! no longer cover. This module closes the loop distributedly:
//!
//! 1. **Detection** — the active nodes run
//!    [`Heartbeat`](confine_netsim::faults::Heartbeat); direct neighbours of
//!    the crashed node suspect it after `timeout + 1` silent rounds.
//! 2. **Wake-up** — the detectors flood a wake token `k + 1 = ⌈τ/2⌉ + 1`
//!    hops over the physical topology; every *sleeping* node inside the
//!    crashed node's `k`-hop neighbourhood rejoins the active set. Only
//!    nodes whose own punctured neighbourhood contained the crash site can
//!    have lost redundancy, so waking that ball restores all locally
//!    available coverage.
//! 3. **Local re-scheduling** — the enlarged active set is pruned back to a
//!    VPT fixpoint by the usual discovery/election rounds, with candidates
//!    restricted to the *changed region*: nodes within `k` hops of any
//!    membership change so far (the crash, each woken node, each new
//!    deletion). Nodes outside the region kept their punctured `k`-ball
//!    verbatim, so their pre-crash "not deletable" verdicts still hold and
//!    the restricted loop reaches a **global** VPT fixpoint. Priorities are
//!    biased so freshly woken nodes go back to sleep first, keeping the
//!    repaired set close to the original schedule.
//!
//! The returned [`Degradation`] bounds the transient via Proposition 1:
//! once repair completes the active set is again a `τ`-confine coverage, so
//! any hole has diameter at most `(τ − 2)·Rc`; *during* the transient the
//! crash can at worst merge the two confines sharing the dead node into one
//! cycle of `≤ 2τ − 2` hops, for a hole diameter of at most `(2τ − 4)·Rc`.

use std::collections::BTreeSet;

use confine_graph::{traverse, Graph, GraphView, Masked, NodeId};
use confine_netsim::faults::{FaultPlan, Heartbeat};
use confine_netsim::protocols::{KHopDiscovery, LocalMinElection, WakeFlood};
use confine_netsim::{Engine, SimError};
use rand::Rng;

use crate::distributed::DistributedStats;
use crate::schedule::CoverageSet;
use crate::sharded::SweepEngine;
use crate::vpt::{independence_radius, neighborhood_radius};
use crate::vpt_engine::{EngineConfig, EvalJob, VptEngine};

/// How far the repaired network strayed from the paper's guarantees, and for
/// how long (all bounds per Proposition 1; distances in units of `Rc`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Rounds from the crash until its neighbours suspected it
    /// (`timeout + 1` in the synchronous model).
    pub detection_rounds: usize,
    /// Communication rounds spent waking and re-scheduling after detection.
    pub repair_rounds: usize,
    /// Hole-diameter bound while the repair was in flight: the crash merges
    /// at most two `τ`-hop confines into a `≤ 2τ − 2` cycle, so
    /// `D ≤ (2τ − 4)·Rc`.
    pub transient_hole_bound: f64,
    /// Hole-diameter bound after repair: the active set is again a VPT
    /// fixpoint, hence a `τ`-confine coverage with `D ≤ (τ − 2)·Rc`.
    pub post_repair_hole_bound: f64,
}

/// The result of one [`CoverageRepair::repair`] call.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired schedule: `active` is the new active set, `deleted` the
    /// nodes this repair put (back) to sleep, `rounds` its deletion rounds.
    pub set: CoverageSet,
    /// Sleeping nodes woken by the repair (some may have been re-deleted;
    /// those appear in `set.deleted` too).
    pub woken: Vec<NodeId>,
    /// Detectors: active neighbours of the crash that raised the alarm.
    pub detectors: Vec<NodeId>,
    /// Traffic of all three repair phases (in `repair_messages`).
    pub stats: DistributedStats,
    /// Transient/steady-state coverage bounds.
    pub degradation: Degradation,
}

/// How a node that crash-recovered re-enters the schedule
/// ([`CoverageRepair::rejoin`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RejoinPolicy {
    /// Wake the rejoiner's neighbourhood and re-run restricted VPT rounds
    /// until the active set is again a global fixpoint — the sound path.
    #[default]
    ReVerify,
    /// Trust the rejoiner's pre-crash snapshot verbatim: substitute nodes
    /// that woke while it was down are sent straight back to sleep and no
    /// VPT verdict is re-checked. **Deliberately unsound** — the snapshot
    /// is stale, so this can tear open a covered hole. Kept as the planted
    /// regression the chaos shrinker demo hunts (DESIGN.md §11).
    TrustSnapshot,
}

/// The result of one [`CoverageRepair::rejoin`] call.
#[derive(Debug, Clone)]
pub struct RejoinOutcome {
    /// The adjusted schedule: `active` is the new active set, `deleted` the
    /// nodes this rejoin put (back) to sleep, `rounds` its deletion rounds.
    pub set: CoverageSet,
    /// Sleeping nodes woken by the re-verification (always empty under
    /// [`RejoinPolicy::TrustSnapshot`]).
    pub woken: Vec<NodeId>,
    /// Substitutes: nodes awake now that the rejoiner's snapshot recorded
    /// as asleep (the churn its crash caused). Under `TrustSnapshot` these
    /// are exactly the nodes forced back to sleep.
    pub demoted: Vec<NodeId>,
    /// Traffic of the announcement flood and any re-scheduling rounds.
    pub stats: DistributedStats,
}

/// The result of one [`CoverageRepair::reconcile`] call.
#[derive(Debug, Clone)]
pub struct ReconcileOutcome {
    /// The reconciled schedule: `active` is the new active set, `deleted`
    /// the nodes this pass put (back) to sleep, `rounds` its deletion
    /// rounds.
    pub set: CoverageSet,
    /// Sleeping nodes woken around the dirty seeds (some may have been
    /// re-deleted; those appear in `set.deleted` too).
    pub woken: Vec<NodeId>,
    /// Traffic of the wake flood and the re-scheduling rounds.
    pub stats: DistributedStats,
}

/// Distributed coverage repair around one crashed active node, plus the
/// rejoin and reconciliation passes of the chaos layer.
#[derive(Debug, Clone)]
pub struct CoverageRepair {
    tau: usize,
    heartbeat_timeout: usize,
    max_comm_rounds: usize,
    comm_range: f64,
    /// Ambient fault environment every repair phase runs under (partitions,
    /// link loss, flaps). Phases apply it afresh — entries are interpreted
    /// in per-phase rounds, so open-ended windows (e.g. a partition with
    /// `until = usize::MAX`) describe a condition that simply *holds*
    /// throughout the repair. Crash entries are not harvested by the repair
    /// loop and belong in the explicit `crashed` argument instead.
    ambient: FaultPlan,
}

impl CoverageRepair {
    pub(crate) fn from_builder(
        tau: usize,
        heartbeat_timeout: usize,
        max_comm_rounds: usize,
        comm_range: f64,
        ambient: FaultPlan,
    ) -> Self {
        CoverageRepair {
            tau,
            heartbeat_timeout,
            max_comm_rounds,
            comm_range,
            ambient,
        }
    }

    /// The ambient fault environment, if any was configured.
    fn ambient_plan(&self) -> Option<FaultPlan> {
        if self.ambient.is_empty() {
            None
        } else {
            Some(self.ambient.clone())
        }
    }

    /// Detects the crash of `crashed` by heartbeat, wakes the sleeping
    /// nodes in its `k`-hop neighbourhood and re-runs local VPT rounds
    /// until the active set is again a global VPT fixpoint (given the
    /// pre-crash `active` set was one).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotActive`] if `crashed` is not in `active`,
    /// [`SimError::BoundaryMismatch`] if the flag slice does not cover the
    /// graph, or [`SimError::RoundLimitExceeded`] if a repair phase fails
    /// to converge within the configured limit.
    pub fn repair<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        crashed: NodeId,
        rng: &mut R,
    ) -> Result<RepairOutcome, SimError> {
        let mut engine = VptEngine::new(self.tau, EngineConfig::default());
        self.repair_with_engine(graph, boundary, active, crashed, &mut engine, rng)
    }

    /// [`CoverageRepair::repair`] with a caller-owned [`VptEngine`] whose
    /// fingerprint memo persists across repairs (the [`crate::dcc`] runner
    /// path).
    pub(crate) fn repair_with_engine<R: Rng, E: SweepEngine>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        crashed: NodeId,
        vpt: &mut E,
        rng: &mut R,
    ) -> Result<RepairOutcome, SimError> {
        if boundary.len() != graph.node_count() {
            return Err(SimError::BoundaryMismatch {
                flags: boundary.len(),
                nodes: graph.node_count(),
            });
        }
        if !active.contains(&crashed) {
            // Only active nodes can crash out of the schedule.
            return Err(SimError::NotActive { node: crashed });
        }
        let k = neighborhood_radius(self.tau);
        let mut stats = DistributedStats::default();

        // Phase 1: heartbeat detection on the pre-crash active overlay,
        // under the ambient fault environment plus the crash itself.
        let horizon = self.heartbeat_timeout + 3;
        let detectors: Vec<NodeId> = {
            let overlay = Masked::from_active(graph, active);
            let mut hb = Engine::new(&overlay, |_| {
                Heartbeat::new(self.heartbeat_timeout, horizon)
            })
            .with_faults(self.ambient.clone().crash(crashed, 1));
            stats.absorb_repair(hb.run(horizon + 4)?);
            // Ambient loss or partitions make live neighbours fall silent
            // too; count how often a node was suspected and then heard from
            // again (the false-positive side of the detector).
            stats.false_suspicions += overlay
                .active_nodes()
                .filter_map(|v| hb.state(v))
                .map(|state| state.false_suspicions())
                .sum::<usize>();
            overlay
                .view_neighbors(crashed)
                .filter(|&w| {
                    hb.state(w)
                        .is_some_and(|state| state.suspected().contains(&crashed))
                })
                .collect()
        };

        // Phase 2: detectors wake the sleeping nodes in the crash's k-ball.
        // Sleeping nodes keep their radio in a low-duty wake channel, so the
        // flood runs over the full physical topology (minus the dead node);
        // the extra hop of budget covers detours around the crash site.
        let mut wake_view = Masked::all_active(graph);
        wake_view.deactivate(crashed);
        let survivors: BTreeSet<NodeId> =
            active.iter().copied().filter(|&v| v != crashed).collect();
        let ball: BTreeSet<NodeId> = traverse::k_hop_neighbors(graph, crashed, k)
            .into_iter()
            .collect();
        let woken: Vec<NodeId> = {
            let sources: BTreeSet<NodeId> = detectors.iter().copied().collect();
            let mut flood =
                Engine::new(&wake_view, |v| WakeFlood::new(sources.contains(&v), k + 1));
            if let Some(plan) = self.ambient_plan() {
                flood = flood.with_faults(plan);
            }
            stats.absorb_repair(flood.run(self.max_comm_rounds)?);
            wake_view
                .active_nodes()
                .filter(|v| !survivors.contains(v) && ball.contains(v))
                .filter(|&v| flood.state(v).is_some_and(|state| state.heard()))
                .collect()
        };

        // Phase 3: prune the enlarged set back to a fixpoint, electing only
        // inside the changed region. `region` is monotone: every membership
        // change marks its k-ball (on the physical graph — a superset of
        // any overlay ball, so no affected verdict escapes the region).
        let comm_rounds_before = stats.comm_rounds;
        let mut region = vec![false; graph.node_count()];
        self.mark_region(graph, crashed, &mut region);
        for &w in &woken {
            self.mark_region(graph, w, &mut region);
        }
        let prefer_sleep: BTreeSet<NodeId> = woken.iter().copied().collect();
        let mut members: Vec<NodeId> = survivors
            .iter()
            .copied()
            .chain(woken.iter().copied())
            .collect();
        members.sort_unstable();
        let set = self.prune_to_fixpoint(
            graph,
            boundary,
            &members,
            &mut region,
            &prefer_sleep,
            vpt,
            &mut stats,
            rng,
        )?;
        let tau = self.tau as f64;
        let degradation = Degradation {
            detection_rounds: self.heartbeat_timeout + 1,
            repair_rounds: stats.comm_rounds - comm_rounds_before,
            transient_hole_bound: (2.0 * tau - 4.0) * self.comm_range,
            post_repair_hole_bound: (tau - 2.0) * self.comm_range,
        };
        Ok(RepairOutcome {
            set,
            woken,
            detectors,
            stats,
            degradation,
        })
    }

    /// Re-enters `node` into the schedule after a crash-recovery, given the
    /// active-set `snapshot` it held when it went down.
    ///
    /// The rejoiner floods an announcement `k + 1` hops; under
    /// [`RejoinPolicy::ReVerify`] the sleeping nodes of its `k`-ball wake
    /// and the union is pruned back to a global VPT fixpoint, while
    /// [`RejoinPolicy::TrustSnapshot`] reverts the neighbourhood to the
    /// stale snapshot without any re-verification (deliberately unsound —
    /// see [`RejoinPolicy`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BoundaryMismatch`] if the flag slice does not
    /// cover the graph, [`SimError::Internal`] if `node` is already active,
    /// or [`SimError::RoundLimitExceeded`] if a phase fails to converge.
    #[allow(clippy::too_many_arguments)]
    pub fn rejoin<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        node: NodeId,
        snapshot: &[NodeId],
        policy: RejoinPolicy,
        rng: &mut R,
    ) -> Result<RejoinOutcome, SimError> {
        let mut engine = VptEngine::new(self.tau, EngineConfig::default());
        self.rejoin_with_engine(
            graph,
            boundary,
            active,
            node,
            snapshot,
            policy,
            &mut engine,
            rng,
        )
    }

    /// [`CoverageRepair::rejoin`] with a caller-owned [`VptEngine`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rejoin_with_engine<R: Rng, E: SweepEngine>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        node: NodeId,
        snapshot: &[NodeId],
        policy: RejoinPolicy,
        vpt: &mut E,
        rng: &mut R,
    ) -> Result<RejoinOutcome, SimError> {
        if boundary.len() != graph.node_count() {
            return Err(SimError::BoundaryMismatch {
                flags: boundary.len(),
                nodes: graph.node_count(),
            });
        }
        if active.contains(&node) {
            return Err(SimError::Internal {
                what: "rejoin of a node that is already active",
            });
        }
        let k = neighborhood_radius(self.tau);
        let mut stats = DistributedStats::default();

        // Announcement: the rejoiner floods "I'm back" k + 1 hops over the
        // physical topology (its radio is up again).
        let wake_view = Masked::all_active(graph);
        let mut flood = Engine::new(&wake_view, |v| WakeFlood::new(v == node, k + 1));
        if let Some(plan) = self.ambient_plan() {
            flood = flood.with_faults(plan);
        }
        stats.absorb_repair(flood.run(self.max_comm_rounds)?);

        let ball: BTreeSet<NodeId> = traverse::k_hop_neighbors(graph, node, k)
            .into_iter()
            .collect();
        let snapshot_set: BTreeSet<NodeId> = snapshot.iter().copied().collect();
        // Substitutes: nodes awake now that the snapshot recorded as asleep
        // — the churn the rejoiner's crash caused in its neighbourhood.
        let demoted: Vec<NodeId> = active
            .iter()
            .copied()
            .filter(|v| ball.contains(v) && !snapshot_set.contains(v))
            .collect();

        match policy {
            RejoinPolicy::TrustSnapshot => {
                // The planted regression: revert the neighbourhood to the
                // stale snapshot without re-checking a single VPT verdict.
                // Nodes the snapshot believed awake but the interim repair
                // put to sleep stay asleep, so coverage can tear.
                let demoted_set: BTreeSet<NodeId> = demoted.iter().copied().collect();
                let mut new_active: Vec<NodeId> = active
                    .iter()
                    .copied()
                    .filter(|v| !demoted_set.contains(v))
                    .chain(std::iter::once(node))
                    .collect();
                new_active.sort_unstable();
                Ok(RejoinOutcome {
                    set: CoverageSet {
                        active: new_active,
                        deleted: demoted.clone(),
                        rounds: 0,
                    },
                    woken: Vec::new(),
                    demoted,
                    stats,
                })
            }
            RejoinPolicy::ReVerify => {
                // Wake the sleepers of the rejoiner's ball that heard the
                // announcement, then prune the union back to a fixpoint.
                // Waking first makes the pass self-healing: if the interim
                // repair left the neighbourhood short of coverage (e.g. it
                // ran under a partition), the fresh candidates restore it.
                let active_set: BTreeSet<NodeId> = active.iter().copied().collect();
                let woken: Vec<NodeId> = wake_view
                    .active_nodes()
                    .filter(|v| *v != node && !active_set.contains(v) && ball.contains(v))
                    .filter(|&v| flood.state(v).is_some_and(|state| state.heard()))
                    .collect();
                let mut region = vec![false; graph.node_count()];
                self.mark_region(graph, node, &mut region);
                for &w in &woken {
                    self.mark_region(graph, w, &mut region);
                }
                let mut prefer_sleep: BTreeSet<NodeId> = woken.iter().copied().collect();
                prefer_sleep.insert(node);
                prefer_sleep.extend(demoted.iter().copied());
                let mut members: Vec<NodeId> = active
                    .iter()
                    .copied()
                    .chain(woken.iter().copied())
                    .chain(std::iter::once(node))
                    .collect();
                members.sort_unstable();
                let set = self.prune_to_fixpoint(
                    graph,
                    boundary,
                    &members,
                    &mut region,
                    &prefer_sleep,
                    vpt,
                    &mut stats,
                    rng,
                )?;
                Ok(RejoinOutcome {
                    set,
                    woken,
                    demoted,
                    stats,
                })
            }
        }
    }

    /// Reconciles the schedule around a set of `dirty` seeds — nodes near a
    /// membership change whose verdicts may be stale (the post-heal pass
    /// after a network partition).
    ///
    /// The seeds flood a wake call `k + 1` hops; sleeping nodes inside the
    /// seeds' `k`-balls rejoin as candidates and the union is pruned back
    /// to a global VPT fixpoint. With no stale state this is a no-op (the
    /// pruner immediately re-sleeps every woken node), which the chaos
    /// harness checks as its churn oracle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BoundaryMismatch`] if the flag slice does not
    /// cover the graph, or [`SimError::RoundLimitExceeded`] if a phase
    /// fails to converge.
    pub fn reconcile<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        dirty: &[NodeId],
        rng: &mut R,
    ) -> Result<ReconcileOutcome, SimError> {
        let mut engine = VptEngine::new(self.tau, EngineConfig::default());
        self.reconcile_with_engine(graph, boundary, active, dirty, &mut engine, rng)
    }

    /// [`CoverageRepair::reconcile`] with a caller-owned [`VptEngine`].
    pub(crate) fn reconcile_with_engine<R: Rng, E: SweepEngine>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        dirty: &[NodeId],
        vpt: &mut E,
        rng: &mut R,
    ) -> Result<ReconcileOutcome, SimError> {
        if boundary.len() != graph.node_count() {
            return Err(SimError::BoundaryMismatch {
                flags: boundary.len(),
                nodes: graph.node_count(),
            });
        }
        let k = neighborhood_radius(self.tau);
        let mut stats = DistributedStats::default();

        let sources: BTreeSet<NodeId> = dirty.iter().copied().collect();
        let wake_view = Masked::all_active(graph);
        let mut flood = Engine::new(&wake_view, |v| WakeFlood::new(sources.contains(&v), k + 1));
        if let Some(plan) = self.ambient_plan() {
            flood = flood.with_faults(plan);
        }
        stats.absorb_repair(flood.run(self.max_comm_rounds)?);

        let balls: BTreeSet<NodeId> = dirty
            .iter()
            .copied()
            .chain(
                dirty
                    .iter()
                    .flat_map(|&d| traverse::k_hop_neighbors(graph, d, k)),
            )
            .collect();
        let active_set: BTreeSet<NodeId> = active.iter().copied().collect();
        let woken: Vec<NodeId> = wake_view
            .active_nodes()
            .filter(|v| !active_set.contains(v) && balls.contains(v))
            .filter(|&v| flood.state(v).is_some_and(|state| state.heard()))
            .collect();

        let mut region = vec![false; graph.node_count()];
        for &d in dirty {
            self.mark_region(graph, d, &mut region);
        }
        for &w in &woken {
            self.mark_region(graph, w, &mut region);
        }
        let prefer_sleep: BTreeSet<NodeId> = woken.iter().copied().collect();
        let mut members: Vec<NodeId> = active
            .iter()
            .copied()
            .chain(woken.iter().copied())
            .collect();
        members.sort_unstable();
        let set = self.prune_to_fixpoint(
            graph,
            boundary,
            &members,
            &mut region,
            &prefer_sleep,
            vpt,
            &mut stats,
            rng,
        )?;
        Ok(ReconcileOutcome { set, woken, stats })
    }

    /// Marks `center` and its `k`-ball (on the physical graph) in `region`.
    fn mark_region(&self, graph: &Graph, center: NodeId, region: &mut [bool]) {
        let k = neighborhood_radius(self.tau);
        region[center.index()] = true;
        for w in traverse::k_hop_neighbors(graph, center, k) {
            region[w.index()] = true;
        }
    }

    /// Shared pruning core of repair, rejoin and reconcile: runs restricted
    /// discovery/election rounds on the `members` overlay until no node in
    /// `region` is deletable, biasing elections so `prefer_sleep` nodes
    /// (freshly woken, rejoiners, substitutes) go back to sleep first.
    /// Every deletion extends `region` by the winner's `k`-ball, so the
    /// restricted loop still reaches a *global* VPT fixpoint.
    #[allow(clippy::too_many_arguments)]
    fn prune_to_fixpoint<R: Rng, E: SweepEngine>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        members: &[NodeId],
        region: &mut [bool],
        prefer_sleep: &BTreeSet<NodeId>,
        vpt: &mut E,
        stats: &mut DistributedStats,
        rng: &mut R,
    ) -> Result<CoverageSet, SimError> {
        let k = neighborhood_radius(self.tau);
        let m = independence_radius(self.tau);
        let mut masked = Masked::from_active(graph, members);
        let mut resleep = Vec::new();
        let mut rounds = 0usize;
        loop {
            let mut discovery = Engine::new(&masked, |_| KHopDiscovery::new(k));
            if let Some(plan) = self.ambient_plan() {
                discovery = discovery.with_faults(plan);
            }
            stats.absorb_repair(discovery.run(self.max_comm_rounds)?);
            let jobs: Vec<EvalJob> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()] && region[v.index()])
                .filter_map(|v| {
                    // A node without discovery state simply isn't a deletion
                    // candidate this round (conservative: it stays awake).
                    let state = discovery.state(v)?;
                    let (graph, members) = state.punctured_graph(v);
                    Some(EvalJob {
                        node: v,
                        members,
                        graph,
                    })
                })
                .collect();
            let verdicts = vpt.evaluate_jobs(&jobs);
            let mut deletable = vec![false; graph.node_count()];
            let mut any = false;
            for (job, ok) in jobs.iter().zip(verdicts.iter()) {
                if ok {
                    deletable[job.node.index()] = true;
                    any = true;
                }
            }
            if !any {
                break;
            }

            let mut priorities = vec![0.0f64; graph.node_count()];
            for v in masked.active_nodes() {
                if deletable[v.index()] {
                    // Preferred sleepers draw from [0, 1), the rest from
                    // [1, 2): the pruner undoes churn before touching the
                    // original schedule.
                    let bias = if prefer_sleep.contains(&v) { 0.0 } else { 1.0 };
                    priorities[v.index()] = bias + rng.gen::<f64>();
                }
            }
            let mut election = Engine::new(&masked, |v| {
                LocalMinElection::new(m, deletable[v.index()], priorities[v.index()])
            });
            if let Some(plan) = self.ambient_plan() {
                election = election.with_faults(plan);
            }
            stats.absorb_repair(election.run(self.max_comm_rounds)?);
            let winners: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| deletable[v.index()])
                .filter(|&v| election.state(v).is_some_and(|s| s.is_winner(v)))
                .collect();
            if winners.is_empty() {
                // A candidate that hears no stricter claim wins by default,
                // so an empty winner set indicates corrupted election state.
                return Err(SimError::ElectionStalled { retries: 0 });
            }
            for v in winners {
                masked.deactivate(v);
                resleep.push(v);
                self.mark_region(graph, v, region);
            }
            rounds += 1;
        }
        Ok(CoverageSet {
            active: masked.active_nodes().collect(),
            deleted: resleep,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcc::Dcc;
    use crate::schedule::is_vpt_fixpoint;
    use confine_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn king_boundary(w: usize, h: usize) -> Vec<bool> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect()
    }

    fn internal_actives(active: &[NodeId], boundary: &[bool]) -> Vec<NodeId> {
        active
            .iter()
            .copied()
            .filter(|v| !boundary[v.index()])
            .collect()
    }

    #[test]
    fn repair_restores_fixpoint_after_internal_crash() {
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(5);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        assert!(is_vpt_fixpoint(&g, &set.active, &boundary, tau));
        let victims = internal_actives(&set.active, &boundary);
        assert!(!victims.is_empty(), "7×7 fixpoints keep internal nodes");

        for &victim in &victims {
            let outcome = Dcc::builder(tau)
                .repair()
                .unwrap()
                .repair(&g, &boundary, &set.active, victim, &mut rng)
                .unwrap();
            assert!(
                is_vpt_fixpoint(&g, &outcome.set.active, &boundary, tau),
                "repair after crashing {victim:?} must restore the fixpoint"
            );
            assert!(!outcome.set.active.contains(&victim), "the dead stay dead");
            for (i, &b) in boundary.iter().enumerate() {
                if b {
                    assert!(outcome.set.active.contains(&NodeId::from(i)));
                }
            }
            assert!(outcome.stats.repair_messages > 0);
            assert_eq!(
                outcome.stats.crashed, 1,
                "the heartbeat run observed the crash"
            );
            assert!(!outcome.detectors.is_empty(), "neighbours must detect");
        }
    }

    #[test]
    fn woken_nodes_stay_inside_the_k_ball() {
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(8);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let outcome = Dcc::builder(tau)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();
        let k = neighborhood_radius(tau);
        let ball = traverse::k_hop_neighbors(&g, victim, k);
        for w in &outcome.woken {
            assert!(
                ball.contains(w),
                "{w:?} woke outside the {k}-ball of {victim:?}"
            );
            assert!(!set.active.contains(w), "woken nodes were asleep");
        }
    }

    #[test]
    fn degradation_report_follows_proposition_1() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(2);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let rc = 30.0;
        let outcome = Dcc::builder(tau)
            .heartbeat_timeout(2)
            .comm_range(rc)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();
        let d = outcome.degradation;
        assert_eq!(d.detection_rounds, 3, "timeout + 1");
        assert!(d.repair_rounds > 0);
        assert_eq!(d.post_repair_hole_bound, (tau as f64 - 2.0) * rc);
        assert_eq!(d.transient_hole_bound, 2.0 * (tau as f64 - 2.0) * rc);
        assert!(d.transient_hole_bound >= d.post_repair_hole_bound);
    }

    #[test]
    fn repair_prefers_putting_woken_nodes_back_to_sleep() {
        // Every node the repair re-deletes should be one it woke itself or
        // a node inside the changed region — never a far-away original.
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(13);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let outcome = Dcc::builder(tau)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();
        let k = neighborhood_radius(tau);
        // Region bound: everything resleep'd is within 2k of the crash, by
        // the locality argument (changes propagate one k-ball at a time but
        // start from the crash's ball).
        for v in &outcome.set.deleted {
            let d = traverse::distance(&g, victim, *v).expect("connected grid");
            assert!(
                d <= 3 * k,
                "resleep {v:?} at distance {d} strays far from the crash (k = {k})"
            );
        }
    }

    #[test]
    fn repairing_a_sleeping_node_errors() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let (set, _) = Dcc::builder(4)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let sleeper = set.deleted[0];
        let err = Dcc::builder(4)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, sleeper, &mut rng)
            .unwrap_err();
        assert_eq!(err, SimError::NotActive { node: sleeper });
    }

    #[test]
    fn rejoin_reverify_restores_a_fixpoint_with_the_node_considered() {
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(9);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let snapshot = set.active.clone();
        let mut runner = Dcc::builder(tau).repair().unwrap();
        let repaired = runner
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();

        let outcome = runner
            .rejoin(
                &g,
                &boundary,
                &repaired.set.active,
                victim,
                &snapshot,
                RejoinPolicy::ReVerify,
                &mut rng,
            )
            .unwrap();
        assert!(
            is_vpt_fixpoint(&g, &outcome.set.active, &boundary, tau),
            "re-verified rejoin ends on a global fixpoint"
        );
        assert!(outcome.stats.repair_messages > 0, "announcement traffic");
        // The rejoiner either serves or was pruned as redundant — but it
        // was *considered*: if asleep, it must be VPT-deletable right now.
        if !outcome.set.active.contains(&victim) {
            assert!(outcome.set.deleted.contains(&victim));
        }
    }

    #[test]
    fn rejoin_trust_snapshot_skips_verification_and_demotes_substitutes() {
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(13);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let snapshot = set.active.clone();
        let mut runner = Dcc::builder(tau).repair().unwrap();
        let repaired = runner
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();

        let outcome = runner
            .rejoin(
                &g,
                &boundary,
                &repaired.set.active,
                victim,
                &snapshot,
                RejoinPolicy::TrustSnapshot,
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            outcome.set.rounds, 0,
            "the planted bug runs zero verification rounds"
        );
        assert!(outcome.set.active.contains(&victim), "splices itself in");
        assert!(outcome.woken.is_empty(), "wakes nobody");
        // Every demoted substitute was active and absent from the snapshot.
        for d in &outcome.demoted {
            assert!(repaired.set.active.contains(d));
            assert!(!snapshot.contains(d));
            assert!(!outcome.set.active.contains(d));
        }
    }

    #[test]
    fn rejoining_an_active_node_is_a_typed_error() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let (set, _) = Dcc::builder(4)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let snapshot = set.active.clone();
        let node = set.active[0];
        let err = Dcc::builder(4)
            .repair()
            .unwrap()
            .rejoin(
                &g,
                &boundary,
                &set.active,
                node,
                &snapshot,
                RejoinPolicy::ReVerify,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Internal { .. }));
    }

    #[test]
    fn reconcile_on_a_clean_fixpoint_is_a_noop() {
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(21);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        assert!(is_vpt_fixpoint(&g, &set.active, &boundary, tau));
        let dirty = internal_actives(&set.active, &boundary);
        let outcome = Dcc::builder(tau)
            .repair()
            .unwrap()
            .reconcile(&g, &boundary, &set.active, &dirty, &mut rng)
            .unwrap();
        assert_eq!(
            outcome.set.active, set.active,
            "a quiescent schedule reconciles to itself"
        );
    }
}
