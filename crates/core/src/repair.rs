//! Failure-adaptive coverage repair (robustness extension beyond the paper).
//!
//! The DCC scheduler produces a *static* active set; a crash-stop failure of
//! an active node afterwards can open a coverage hole the paper's guarantees
//! no longer cover. This module closes the loop distributedly:
//!
//! 1. **Detection** — the active nodes run
//!    [`Heartbeat`](confine_netsim::faults::Heartbeat); direct neighbours of
//!    the crashed node suspect it after `timeout + 1` silent rounds.
//! 2. **Wake-up** — the detectors flood a wake token `k + 1 = ⌈τ/2⌉ + 1`
//!    hops over the physical topology; every *sleeping* node inside the
//!    crashed node's `k`-hop neighbourhood rejoins the active set. Only
//!    nodes whose own punctured neighbourhood contained the crash site can
//!    have lost redundancy, so waking that ball restores all locally
//!    available coverage.
//! 3. **Local re-scheduling** — the enlarged active set is pruned back to a
//!    VPT fixpoint by the usual discovery/election rounds, with candidates
//!    restricted to the *changed region*: nodes within `k` hops of any
//!    membership change so far (the crash, each woken node, each new
//!    deletion). Nodes outside the region kept their punctured `k`-ball
//!    verbatim, so their pre-crash "not deletable" verdicts still hold and
//!    the restricted loop reaches a **global** VPT fixpoint. Priorities are
//!    biased so freshly woken nodes go back to sleep first, keeping the
//!    repaired set close to the original schedule.
//!
//! The returned [`Degradation`] bounds the transient via Proposition 1:
//! once repair completes the active set is again a `τ`-confine coverage, so
//! any hole has diameter at most `(τ − 2)·Rc`; *during* the transient the
//! crash can at worst merge the two confines sharing the dead node into one
//! cycle of `≤ 2τ − 2` hops, for a hole diameter of at most `(2τ − 4)·Rc`.

use std::collections::BTreeSet;

use confine_graph::{traverse, Graph, GraphView, Masked, NodeId};
use confine_netsim::faults::{FaultPlan, Heartbeat};
use confine_netsim::protocols::{KHopDiscovery, LocalMinElection};
use confine_netsim::{Context, Engine, Envelope, Protocol, SimError};
use rand::Rng;

use crate::distributed::DistributedStats;
use crate::schedule::CoverageSet;
use crate::vpt::{independence_radius, neighborhood_radius};
use crate::vpt_engine::{EvalJob, VptEngine};

/// How far the repaired network strayed from the paper's guarantees, and for
/// how long (all bounds per Proposition 1; distances in units of `Rc`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Rounds from the crash until its neighbours suspected it
    /// (`timeout + 1` in the synchronous model).
    pub detection_rounds: usize,
    /// Communication rounds spent waking and re-scheduling after detection.
    pub repair_rounds: usize,
    /// Hole-diameter bound while the repair was in flight: the crash merges
    /// at most two `τ`-hop confines into a `≤ 2τ − 2` cycle, so
    /// `D ≤ (2τ − 4)·Rc`.
    pub transient_hole_bound: f64,
    /// Hole-diameter bound after repair: the active set is again a VPT
    /// fixpoint, hence a `τ`-confine coverage with `D ≤ (τ − 2)·Rc`.
    pub post_repair_hole_bound: f64,
}

/// The result of one [`CoverageRepair::repair`] call.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired schedule: `active` is the new active set, `deleted` the
    /// nodes this repair put (back) to sleep, `rounds` its deletion rounds.
    pub set: CoverageSet,
    /// Sleeping nodes woken by the repair (some may have been re-deleted;
    /// those appear in `set.deleted` too).
    pub woken: Vec<NodeId>,
    /// Detectors: active neighbours of the crash that raised the alarm.
    pub detectors: Vec<NodeId>,
    /// Traffic of all three repair phases (in `repair_messages`).
    pub stats: DistributedStats,
    /// Transient/steady-state coverage bounds.
    pub degradation: Degradation,
}

/// Wake token: "rejoin the active set", flooded with a hop budget.
#[derive(Debug, Clone, Copy)]
struct WakeToken {
    ttl: u32,
}

/// One-shot TTL flood from the detector set over the physical topology.
#[derive(Debug)]
struct WakeFlood {
    source: bool,
    ttl: u32,
    heard: bool,
}

impl Protocol for WakeFlood {
    type Message = WakeToken;

    fn on_start(&mut self, ctx: &mut Context<'_, WakeToken>) {
        if self.source {
            self.heard = true;
            if self.ttl > 0 {
                ctx.broadcast(WakeToken { ttl: self.ttl - 1 });
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, WakeToken>, inbox: &[Envelope<WakeToken>]) {
        // In the synchronous flood the first arrival carries the largest
        // remaining ttl, so re-forwarding only on first receipt is lossless.
        let best = inbox.iter().map(|env| env.payload.ttl).max();
        if let Some(ttl) = best {
            if !self.heard {
                self.heard = true;
                if ttl > 0 {
                    ctx.broadcast(WakeToken { ttl: ttl - 1 });
                }
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        true
    }

    fn payload_size(_msg: &WakeToken) -> usize {
        4
    }
}

/// Distributed coverage repair around one crashed active node.
#[derive(Debug, Clone, Copy)]
pub struct CoverageRepair {
    tau: usize,
    heartbeat_timeout: usize,
    max_comm_rounds: usize,
    comm_range: f64,
}

impl CoverageRepair {
    /// Creates the repair driver for confine size `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `tau < 3`.
    #[deprecated(since = "0.2.0", note = "use `Dcc::builder(tau).repair()`")]
    pub fn new(tau: usize) -> Self {
        assert!(tau >= crate::config::MIN_TAU, "confine size must be ≥ 3");
        CoverageRepair::from_builder(tau, crate::config::DEFAULT_HEARTBEAT_TIMEOUT, 10_000, 1.0)
    }

    pub(crate) fn from_builder(
        tau: usize,
        heartbeat_timeout: usize,
        max_comm_rounds: usize,
        comm_range: f64,
    ) -> Self {
        CoverageRepair {
            tau,
            heartbeat_timeout,
            max_comm_rounds,
            comm_range,
        }
    }

    /// Overrides the heartbeat silence timeout (default
    /// [`crate::config::DEFAULT_HEARTBEAT_TIMEOUT`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `Dcc::builder(tau).heartbeat_timeout(..)`"
    )]
    pub fn with_heartbeat_timeout(mut self, timeout: usize) -> Self {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Overrides the per-phase communication round limit.
    #[deprecated(since = "0.2.0", note = "use `Dcc::builder(tau).round_limit(..)`")]
    pub fn with_round_limit(mut self, limit: usize) -> Self {
        self.max_comm_rounds = limit;
        self
    }

    /// Sets the communication range `Rc` used to scale the hole bounds in
    /// the [`Degradation`] report (default 1.0).
    #[deprecated(since = "0.2.0", note = "use `Dcc::builder(tau).comm_range(..)`")]
    pub fn with_comm_range(mut self, rc: f64) -> Self {
        self.comm_range = rc;
        self
    }

    /// Detects the crash of `crashed` by heartbeat, wakes the sleeping
    /// nodes in its `k`-hop neighbourhood and re-runs local VPT rounds
    /// until the active set is again a global VPT fixpoint (given the
    /// pre-crash `active` set was one).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotActive`] if `crashed` is not in `active`,
    /// [`SimError::BoundaryMismatch`] if the flag slice does not cover the
    /// graph, or [`SimError::RoundLimitExceeded`] if a repair phase fails
    /// to converge within the configured limit.
    pub fn repair<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        crashed: NodeId,
        rng: &mut R,
    ) -> Result<RepairOutcome, SimError> {
        let mut engine = VptEngine::new(self.tau);
        self.repair_with_engine(graph, boundary, active, crashed, &mut engine, rng)
    }

    /// [`CoverageRepair::repair`] with a caller-owned [`VptEngine`] whose
    /// fingerprint memo persists across repairs (the [`crate::dcc`] runner
    /// path).
    pub(crate) fn repair_with_engine<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        active: &[NodeId],
        crashed: NodeId,
        vpt: &mut VptEngine,
        rng: &mut R,
    ) -> Result<RepairOutcome, SimError> {
        if boundary.len() != graph.node_count() {
            return Err(SimError::BoundaryMismatch {
                flags: boundary.len(),
                nodes: graph.node_count(),
            });
        }
        if !active.contains(&crashed) {
            // Only active nodes can crash out of the schedule.
            return Err(SimError::NotActive { node: crashed });
        }
        let k = neighborhood_radius(self.tau);
        let m = independence_radius(self.tau);
        let mut stats = DistributedStats::default();

        // Phase 1: heartbeat detection on the pre-crash active overlay.
        let horizon = self.heartbeat_timeout + 3;
        let detectors: Vec<NodeId> = {
            let overlay = Masked::from_active(graph, active);
            let mut hb = Engine::new(&overlay, |_| {
                Heartbeat::new(self.heartbeat_timeout, horizon)
            })
            .with_faults(FaultPlan::new().crash(crashed, 1));
            stats.absorb_repair(hb.run(horizon + 4)?);
            overlay
                .view_neighbors(crashed)
                .filter(|&w| {
                    hb.state(w)
                        .is_some_and(|state| state.suspected().contains(&crashed))
                })
                .collect()
        };

        // Phase 2: detectors wake the sleeping nodes in the crash's k-ball.
        // Sleeping nodes keep their radio in a low-duty wake channel, so the
        // flood runs over the full physical topology (minus the dead node);
        // the extra hop of budget covers detours around the crash site.
        let mut wake_view = Masked::all_active(graph);
        wake_view.deactivate(crashed);
        let survivors: BTreeSet<NodeId> =
            active.iter().copied().filter(|&v| v != crashed).collect();
        let ball: BTreeSet<NodeId> = traverse::k_hop_neighbors(graph, crashed, k)
            .into_iter()
            .collect();
        let woken: Vec<NodeId> = {
            let sources: BTreeSet<NodeId> = detectors.iter().copied().collect();
            let mut flood = Engine::new(&wake_view, |v| WakeFlood {
                source: sources.contains(&v),
                ttl: k + 1,
                heard: false,
            });
            stats.absorb_repair(flood.run(self.max_comm_rounds)?);
            wake_view
                .active_nodes()
                .filter(|v| !survivors.contains(v) && ball.contains(v))
                .filter(|&v| flood.state(v).is_some_and(|state| state.heard))
                .collect()
        };

        // Phase 3: prune the enlarged set back to a fixpoint, electing only
        // inside the changed region. `region` is monotone: every membership
        // change marks its k-ball (on the physical graph — a superset of
        // any overlay ball, so no affected verdict escapes the region).
        let comm_rounds_before = stats.comm_rounds;
        let mut region = vec![false; graph.node_count()];
        let mark = |center: NodeId, region: &mut Vec<bool>| {
            region[center.index()] = true;
            for w in traverse::k_hop_neighbors(graph, center, k) {
                region[w.index()] = true;
            }
        };
        mark(crashed, &mut region);
        for &w in &woken {
            mark(w, &mut region);
        }
        let woken_set: BTreeSet<NodeId> = woken.iter().copied().collect();
        let mut members: Vec<NodeId> = survivors
            .iter()
            .copied()
            .chain(woken.iter().copied())
            .collect();
        members.sort_unstable();
        let mut masked = Masked::from_active(graph, &members);
        let mut resleep = Vec::new();
        let mut rounds = 0usize;
        loop {
            let mut discovery = Engine::new(&masked, |_| KHopDiscovery::new(k));
            stats.absorb_repair(discovery.run(self.max_comm_rounds)?);
            let jobs: Vec<EvalJob> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()] && region[v.index()])
                .filter_map(|v| {
                    // A node without discovery state simply isn't a deletion
                    // candidate this round (conservative: it stays awake).
                    let state = discovery.state(v)?;
                    let (graph, members) = state.punctured_graph(v);
                    Some(EvalJob {
                        node: v,
                        members,
                        graph,
                    })
                })
                .collect();
            let verdicts = vpt.evaluate_jobs(&jobs);
            let mut deletable = vec![false; graph.node_count()];
            let mut any = false;
            for (job, ok) in jobs.iter().zip(verdicts) {
                if ok {
                    deletable[job.node.index()] = true;
                    any = true;
                }
            }
            if !any {
                break;
            }

            let mut priorities = vec![0.0f64; graph.node_count()];
            for v in masked.active_nodes() {
                if deletable[v.index()] {
                    // Woken nodes draw from [0, 1), originals from [1, 2):
                    // repair prefers restoring the pre-crash schedule.
                    let bias = if woken_set.contains(&v) { 0.0 } else { 1.0 };
                    priorities[v.index()] = bias + rng.gen::<f64>();
                }
            }
            let mut election = Engine::new(&masked, |v| {
                LocalMinElection::new(m, deletable[v.index()], priorities[v.index()])
            });
            stats.absorb_repair(election.run(self.max_comm_rounds)?);
            let winners: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| deletable[v.index()])
                .filter(|&v| election.state(v).is_some_and(|s| s.is_winner(v)))
                .collect();
            if winners.is_empty() {
                // With reliable links the globally minimal candidate always
                // wins, so this indicates corrupted election state.
                return Err(SimError::ElectionStalled { retries: 0 });
            }
            for v in winners {
                masked.deactivate(v);
                resleep.push(v);
                mark(v, &mut region);
            }
            rounds += 1;
        }

        let set = CoverageSet {
            active: masked.active_nodes().collect(),
            deleted: resleep,
            rounds,
        };
        let tau = self.tau as f64;
        let degradation = Degradation {
            detection_rounds: self.heartbeat_timeout + 1,
            repair_rounds: stats.comm_rounds - comm_rounds_before,
            transient_hole_bound: (2.0 * tau - 4.0) * self.comm_range,
            post_repair_hole_bound: (tau - 2.0) * self.comm_range,
        };
        Ok(RepairOutcome {
            set,
            woken,
            detectors,
            stats,
            degradation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcc::Dcc;
    use crate::schedule::is_vpt_fixpoint;
    use confine_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn king_boundary(w: usize, h: usize) -> Vec<bool> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect()
    }

    fn internal_actives(active: &[NodeId], boundary: &[bool]) -> Vec<NodeId> {
        active
            .iter()
            .copied()
            .filter(|v| !boundary[v.index()])
            .collect()
    }

    #[test]
    fn repair_restores_fixpoint_after_internal_crash() {
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(5);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        assert!(is_vpt_fixpoint(&g, &set.active, &boundary, tau));
        let victims = internal_actives(&set.active, &boundary);
        assert!(!victims.is_empty(), "7×7 fixpoints keep internal nodes");

        for &victim in &victims {
            let outcome = Dcc::builder(tau)
                .repair()
                .unwrap()
                .repair(&g, &boundary, &set.active, victim, &mut rng)
                .unwrap();
            assert!(
                is_vpt_fixpoint(&g, &outcome.set.active, &boundary, tau),
                "repair after crashing {victim:?} must restore the fixpoint"
            );
            assert!(!outcome.set.active.contains(&victim), "the dead stay dead");
            for (i, &b) in boundary.iter().enumerate() {
                if b {
                    assert!(outcome.set.active.contains(&NodeId::from(i)));
                }
            }
            assert!(outcome.stats.repair_messages > 0);
            assert_eq!(
                outcome.stats.crashed, 1,
                "the heartbeat run observed the crash"
            );
            assert!(!outcome.detectors.is_empty(), "neighbours must detect");
        }
    }

    #[test]
    fn woken_nodes_stay_inside_the_k_ball() {
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(8);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let outcome = Dcc::builder(tau)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();
        let k = neighborhood_radius(tau);
        let ball = traverse::k_hop_neighbors(&g, victim, k);
        for w in &outcome.woken {
            assert!(
                ball.contains(w),
                "{w:?} woke outside the {k}-ball of {victim:?}"
            );
            assert!(!set.active.contains(w), "woken nodes were asleep");
        }
    }

    #[test]
    fn degradation_report_follows_proposition_1() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(2);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let rc = 30.0;
        let outcome = Dcc::builder(tau)
            .heartbeat_timeout(2)
            .comm_range(rc)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();
        let d = outcome.degradation;
        assert_eq!(d.detection_rounds, 3, "timeout + 1");
        assert!(d.repair_rounds > 0);
        assert_eq!(d.post_repair_hole_bound, (tau as f64 - 2.0) * rc);
        assert_eq!(d.transient_hole_bound, 2.0 * (tau as f64 - 2.0) * rc);
        assert!(d.transient_hole_bound >= d.post_repair_hole_bound);
    }

    #[test]
    fn repair_prefers_putting_woken_nodes_back_to_sleep() {
        // Every node the repair re-deletes should be one it woke itself or
        // a node inside the changed region — never a far-away original.
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let tau = 4;
        let mut rng = StdRng::seed_from_u64(13);
        let (set, _) = Dcc::builder(tau)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let victim = internal_actives(&set.active, &boundary)[0];
        let outcome = Dcc::builder(tau)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, victim, &mut rng)
            .unwrap();
        let k = neighborhood_radius(tau);
        // Region bound: everything resleep'd is within 2k of the crash, by
        // the locality argument (changes propagate one k-ball at a time but
        // start from the crash's ball).
        for v in &outcome.set.deleted {
            let d = traverse::distance(&g, victim, *v).expect("connected grid");
            assert!(
                d <= 3 * k,
                "resleep {v:?} at distance {d} strays far from the crash (k = {k})"
            );
        }
    }

    #[test]
    fn repairing_a_sleeping_node_errors() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let (set, _) = Dcc::builder(4)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        let sleeper = set.deleted[0];
        let err = Dcc::builder(4)
            .repair()
            .unwrap()
            .repair(&g, &boundary, &set.active, sleeper, &mut rng)
            .unwrap_err();
        assert_eq!(err, SimError::NotActive { node: sleeper });
    }
}
