//! The Möbius-band network of Figure 1 — the paper's separating example
//! between the cycle-partition criterion and the homology criterion.
//!
//! The network is a triangulated Möbius band: an outer boundary cycle of 8
//! nodes `a..h` and an inner circle of 4 nodes `1..4`; every outer node
//! connects to the two inner nodes "beneath" it, producing 16 triangles.
//! Placed in the plane with sensing ratio `γ ≤ √3` it is fully covered —
//! but:
//!
//! * its first homology group is **non-trivial** (same type as a circle: the
//!   central 4-cycle cannot be contracted), so the homology criterion (HGC)
//!   wrongly reports a coverage hole;
//! * the outer boundary **is** the GF(2) sum of all 16 triangles, so it is
//!   3-partitionable and the cycle-partition criterion correctly certifies
//!   coverage.

use confine_graph::{Graph, NodeId};

/// The Möbius-band network of Figure 1.
#[derive(Debug, Clone)]
pub struct MoebiusBand {
    /// The connectivity graph: nodes `0..8` are the outer boundary
    /// (`a..h`), nodes `8..12` the inner circle (`1..4`).
    pub graph: Graph,
    /// The outer boundary cycle `a, b, …, h` as node ids.
    pub outer_cycle: Vec<NodeId>,
    /// The inner circle `1, 2, 3, 4` as node ids.
    pub inner_cycle: Vec<NodeId>,
}

/// Number of outer (boundary) nodes.
pub const OUTER: usize = 8;
/// Number of inner nodes.
pub const INNER: usize = 4;

/// Builds the Figure 1 network.
///
/// # Example
///
/// ```
/// use confine_core::moebius::moebius_band;
///
/// let band = moebius_band();
/// assert_eq!(band.graph.node_count(), 12);
/// assert_eq!(band.graph.edge_count(), 28);
/// ```
pub fn moebius_band() -> MoebiusBand {
    let mut graph = Graph::with_node_capacity(OUTER + INNER);
    graph.add_nodes(OUTER + INNER);
    let outer = |i: usize| NodeId::from(i % OUTER);
    let inner = |i: usize| NodeId::from(OUTER + (i % INNER));

    // Outer boundary cycle a..h.
    for i in 0..OUTER {
        // lint: panic-ok(fixed 12-node construction; the doctest pins the node and edge counts)
        graph.add_edge(outer(i), outer(i + 1)).expect("outer rim");
    }
    // Inner circle 1..4.
    for i in 0..INNER {
        graph
            .add_edge(inner(i), inner(i + 1))
            // lint: panic-ok(fixed 12-node construction; the doctest pins the node and edge counts)
            .expect("inner circle");
    }
    // Spokes: outer node j touches inner j mod 4 and inner (j−1) mod 4, so
    // consecutive outer nodes share an inner node and every strip square is
    // triangulated. The outer cycle (8 nodes) winds twice around the inner
    // circle (4 nodes) — exactly the Möbius twist.
    for j in 0..OUTER {
        // lint: panic-ok(fixed 12-node construction; the doctest pins the node and edge counts)
        graph.add_edge(outer(j), inner(j)).expect("first spoke");
        graph
            .add_edge(outer(j), inner(j + INNER - 1))
            // lint: panic-ok(fixed 12-node construction; the doctest pins the node and edge counts)
            .expect("second spoke");
    }

    MoebiusBand {
        graph,
        outer_cycle: (0..OUTER).map(NodeId::from).collect(),
        inner_cycle: (0..INNER).map(|i| NodeId::from(OUTER + i)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confine_cycles::partition::PartitionTester;
    use confine_cycles::Cycle;

    #[test]
    fn counts_give_euler_characteristic_zero() {
        let band = moebius_band();
        let v = band.graph.node_count() as i64;
        let e = band.graph.edge_count() as i64;
        // 16 triangles (counted in the integration tests via the Rips
        // complex); χ = V − E + T = 12 − 28 + 16 = 0, as a Möbius band.
        assert_eq!(v, 12);
        assert_eq!(e, 28);
        assert_eq!(v - e + 16, 0);
    }

    #[test]
    fn every_outer_node_has_degree_four() {
        let band = moebius_band();
        for &v in &band.outer_cycle {
            assert_eq!(band.graph.degree(v), 4, "2 rim + 2 spokes at {v:?}");
        }
        for &v in &band.inner_cycle {
            assert_eq!(band.graph.degree(v), 6, "2 circle + 4 spokes at {v:?}");
        }
    }

    #[test]
    fn outer_boundary_is_3_partitionable() {
        let band = moebius_band();
        let outer = Cycle::from_vertex_cycle(&band.graph, &band.outer_cycle).unwrap();
        let tester = PartitionTester::new(&band.graph);
        assert_eq!(
            tester.min_partition_tau(outer.edge_vec()),
            Some(3),
            "the outer boundary is a sum of triangles"
        );
        let parts = tester.partition(outer.edge_vec()).unwrap();
        assert!(parts.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn inner_circle_is_irreducible() {
        // The central circle is NOT a sum of triangles (it generates the
        // band's homology): its minimal partition is itself.
        let band = moebius_band();
        let inner = Cycle::from_vertex_cycle(&band.graph, &band.inner_cycle).unwrap();
        let tester = PartitionTester::new(&band.graph);
        assert_eq!(tester.min_partition_tau(inner.edge_vec()), Some(4));
    }

    #[test]
    fn outer_is_sum_of_all_triangles() {
        // Explicitly: summing the boundaries of all 16 strip triangles
        // yields exactly the outer cycle (every interior edge is shared by
        // two triangles and cancels).
        let band = moebius_band();
        let g = &band.graph;
        let mut sum = Cycle::zero(g);
        let mut count = 0;
        // Enumerate 3-cliques directly.
        for a in g.nodes() {
            for b in g.neighbors(a).filter(|&b| b > a) {
                for c in g.neighbors(b).filter(|&c| c > b) {
                    if g.has_edge(a, c) {
                        let t = Cycle::from_vertex_cycle(g, &[a, b, c]).unwrap();
                        sum = sum.sum(&t);
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 16);
        let outer = Cycle::from_vertex_cycle(g, &band.outer_cycle).unwrap();
        assert_eq!(sum, outer);
    }
}
