//! The DCC coverage scheduler (Sec. V-B of the paper) — centralized
//! reference implementation.
//!
//! Starting from the full connectivity graph, the scheduler performs a
//! *maximal vertex deletion* by the void preserving transformation: in each
//! round, every active internal node tests local deletability
//! ([`crate::vpt::is_vertex_deletable`]); an `m`-hop maximal independent set
//! of the candidates (random priorities) is deleted simultaneously; rounds
//! repeat until no node can be deleted. Boundary nodes never participate.
//!
//! Two deletion disciplines are provided:
//!
//! * [`DeletionOrder::MisParallel`] — the paper's round structure (safe
//!   parallel deletions at independence radius `m = ⌈τ/2⌉ + 1`);
//! * [`DeletionOrder::Sequential`] — one random candidate at a time; slower
//!   but a useful ablation of the ordering effect on the final set size.
//!
//! The result is non-redundant with respect to the transformation: no
//! remaining internal node passes the deletability test (Theorem 6 gives
//! conditions under which this implies set-theoretic non-redundancy).

use confine_graph::{mis, Graph, GraphView, Masked, NodeId};
use confine_netsim::SimError;
use rand::Rng;

use crate::sharded::SweepEngine;
use crate::vpt::{independence_radius, is_vertex_deletable_with, VptScratch};

/// How deletions are ordered within the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletionOrder {
    /// The paper's discipline: per round, delete an m-hop maximal
    /// independent set of candidates simultaneously.
    #[default]
    MisParallel,
    /// Delete one uniformly random candidate at a time.
    Sequential,
}

/// Outcome of a scheduling run.
#[derive(Debug, Clone)]
pub struct CoverageSet {
    /// Nodes kept awake (boundary nodes plus the surviving internal nodes),
    /// sorted by id.
    pub active: Vec<NodeId>,
    /// Nodes switched off, in deletion order.
    pub deleted: Vec<NodeId>,
    /// Number of deletion rounds executed (parallel discipline) or number of
    /// single deletions (sequential discipline).
    pub rounds: usize,
}

impl CoverageSet {
    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Whether `v` stayed awake (binary search over the sorted active list).
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active.binary_search(&v).is_ok()
    }

    /// Iterates over the active nodes in increasing id order.
    pub fn iter_active(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active.iter().copied()
    }

    /// Active *internal* nodes given the boundary flags the schedule ran
    /// with.
    pub fn active_internal(&self, boundary: &[bool]) -> Vec<NodeId> {
        self.active
            .iter()
            .copied()
            .filter(|v| !boundary[v.index()])
            .collect()
    }
}

/// Engine-backed schedule driver shared by the [`crate::dcc`] runners and
/// the lifetime-rotation machinery.
///
/// Candidate verdicts come from `engine` (round cache + fingerprint memo +
/// thread fan-out — flat or region-sharded); candidate *sets* — and
/// therefore the RNG consumption and the resulting coverage set — are
/// bit-identical to fresh per-candidate evaluation, because verdicts are
/// pure functions of the view.
pub(crate) fn run_schedule<R: Rng, F, E: SweepEngine>(
    graph: &Graph,
    boundary: &[bool],
    excluded: &[NodeId],
    bias: F,
    order: DeletionOrder,
    engine: &mut E,
    rng: &mut R,
) -> Result<CoverageSet, SimError>
where
    F: Fn(NodeId) -> f64,
{
    if engine.tau() < crate::config::MIN_TAU {
        return Err(SimError::InvalidTau {
            tau: engine.tau(),
            min: crate::config::MIN_TAU,
        });
    }
    if boundary.len() != graph.node_count() {
        return Err(SimError::BoundaryMismatch {
            flags: boundary.len(),
            nodes: graph.node_count(),
        });
    }
    let m = independence_radius(engine.tau());
    engine.begin_run(graph.node_count());
    let mut masked = Masked::all_active(graph);
    for &v in excluded {
        masked.deactivate(v);
    }
    let mut deleted = Vec::new();
    let mut rounds = 0;
    loop {
        let eligible: Vec<NodeId> = masked
            .active_nodes()
            .filter(|&v| !boundary[v.index()])
            .collect();
        let candidates = engine.deletable_candidates(&masked, &eligible);
        if candidates.is_empty() {
            break;
        }
        rounds += 1;
        match order {
            DeletionOrder::MisParallel => {
                let mut priorities = vec![0.0f64; graph.node_count()];
                for &v in &candidates {
                    priorities[v.index()] = bias(v) + rng.gen::<f64>() * 1e-6;
                }
                let winners = mis::m_hop_mis(&masked, &candidates, &priorities, m);
                if winners.is_empty() {
                    return Err(SimError::ElectionStalled { retries: 0 });
                }
                // One batched note per round: MIS winners sit ≥ m hops
                // apart, so each winner's k-ball is identical before and
                // after the round's other deactivations — the batch equals
                // the per-winner interleaving bit for bit, and the sharded
                // engine extracts the invalidation balls in parallel.
                engine.note_deletions(&masked, &winners);
                for v in winners {
                    masked.deactivate(v);
                    deleted.push(v);
                }
            }
            DeletionOrder::Sequential => {
                // min_by is None only on an empty set, and empty candidate
                // sets already broke out of the loop above.
                let Some(v) = candidates.iter().copied().min_by(|&a, &b| {
                    (bias(a) + rng.gen::<f64>() * 1e-6)
                        .total_cmp(&(bias(b) + rng.gen::<f64>() * 1e-6))
                }) else {
                    break;
                };
                engine.note_deletion(&masked, v);
                masked.deactivate(v);
                deleted.push(v);
            }
        }
    }
    Ok(CoverageSet {
        active: masked.active_nodes().collect(),
        deleted,
        rounds,
    })
}

/// The seed scheduler's semantics with **no** caching and **no**
/// parallelism: every eligible node is re-evaluated by a fresh
/// [`crate::vpt::is_vertex_deletable`] call in every round.
///
/// This is the sequential-uncached baseline the `vpt_engine` benches compare
/// the engine against; because verdicts are pure, it returns exactly the
/// coverage set the engine-backed path produces for the same RNG.
pub fn reference_schedule<R: Rng>(
    graph: &Graph,
    boundary: &[bool],
    tau: usize,
    order: DeletionOrder,
    rng: &mut R,
) -> Result<CoverageSet, SimError> {
    if tau < crate::config::MIN_TAU {
        return Err(SimError::InvalidTau {
            tau,
            min: crate::config::MIN_TAU,
        });
    }
    if boundary.len() != graph.node_count() {
        return Err(SimError::BoundaryMismatch {
            flags: boundary.len(),
            nodes: graph.node_count(),
        });
    }
    let m = independence_radius(tau);
    let mut masked = Masked::all_active(graph);
    let mut deleted = Vec::new();
    let mut rounds = 0;
    // One scratch for the whole run: the baseline stays sequential and
    // uncached, but it need not re-allocate its arenas per candidate.
    let mut scratch = VptScratch::default();
    loop {
        let candidates: Vec<NodeId> = masked
            .active_nodes()
            .filter(|&v| !boundary[v.index()])
            .filter(|&v| is_vertex_deletable_with(&masked, v, tau, &mut scratch))
            .collect();
        if candidates.is_empty() {
            break;
        }
        rounds += 1;
        match order {
            DeletionOrder::MisParallel => {
                let mut priorities = vec![0.0f64; graph.node_count()];
                for &v in &candidates {
                    priorities[v.index()] = rng.gen::<f64>() * 1e-6;
                }
                let winners = mis::m_hop_mis(&masked, &candidates, &priorities, m);
                if winners.is_empty() {
                    return Err(SimError::ElectionStalled { retries: 0 });
                }
                for v in winners {
                    masked.deactivate(v);
                    deleted.push(v);
                }
            }
            DeletionOrder::Sequential => {
                // Same RNG draws per comparison as the engine path with a
                // zero bias — the streams must stay aligned. min_by is None
                // only on an empty set, which already broke out above.
                let Some(v) = candidates.iter().copied().min_by(|&_a, &_b| {
                    (rng.gen::<f64>() * 1e-6).total_cmp(&(rng.gen::<f64>() * 1e-6))
                }) else {
                    break;
                };
                masked.deactivate(v);
                deleted.push(v);
            }
        }
    }
    Ok(CoverageSet {
        active: masked.active_nodes().collect(),
        deleted,
        rounds,
    })
}

/// Checks the scheduler's fixpoint property: no active internal node passes
/// the deletability test any more.
pub fn is_vpt_fixpoint(graph: &Graph, active: &[NodeId], boundary: &[bool], tau: usize) -> bool {
    let masked = Masked::from_active(graph, active);
    let mut scratch = VptScratch::default();
    active
        .iter()
        .all(|&v| boundary[v.index()] || !is_vertex_deletable_with(&masked, v, tau, &mut scratch))
}

#[cfg(test)]
mod tests {
    // `reference_schedule` is the seed scheduler's semantics; these tests
    // pin its behaviour (and, by the purity argument in its docs, the
    // engine-backed path's too).
    use super::*;
    use confine_graph::{generators, traverse};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rim_boundary(n: usize, total: usize) -> Vec<bool> {
        // Nodes 1..=n are boundary (wheel layout).
        let mut b = vec![false; total];
        for slot in b.iter_mut().take(n + 1).skip(1) {
            *slot = true;
        }
        b
    }

    #[test]
    fn wheel_hub_deleted_only_when_tau_allows() {
        let g = generators::wheel_graph(8);
        let boundary = rim_boundary(8, 9);
        let mut rng = StdRng::seed_from_u64(3);
        for tau in 3..8 {
            let set = reference_schedule(&g, &boundary, tau, DeletionOrder::MisParallel, &mut rng)
                .unwrap();
            assert_eq!(set.active_count(), 9, "hub needed for tau {tau}");
            assert!(set.deleted.is_empty());
        }
        let set =
            reference_schedule(&g, &boundary, 8, DeletionOrder::MisParallel, &mut rng).unwrap();
        assert_eq!(set.deleted, vec![NodeId(0)]);
        assert_eq!(set.rounds, 1);
    }

    #[test]
    fn boundary_nodes_never_deleted() {
        let g = generators::king_grid_graph(6, 6);
        // Outer ring of the grid as boundary.
        let boundary: Vec<bool> = (0..36)
            .map(|i| {
                let (x, y) = (i % 6, i / 6);
                x == 0 || y == 0 || x == 5 || y == 5
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let set =
            reference_schedule(&g, &boundary, 4, DeletionOrder::MisParallel, &mut rng).unwrap();
        for (i, &is_b) in boundary.iter().enumerate() {
            if is_b {
                assert!(
                    set.active.contains(&NodeId::from(i)),
                    "boundary node {i} must stay"
                );
            }
        }
        assert!(
            !set.deleted.is_empty(),
            "some interior nodes are redundant at tau 4"
        );
    }

    #[test]
    fn result_is_fixpoint_and_connected() {
        let g = generators::king_grid_graph(7, 7);
        let boundary: Vec<bool> = (0..49)
            .map(|i| {
                let (x, y) = (i % 7, i / 7);
                x == 0 || y == 0 || x == 6 || y == 6
            })
            .collect();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let set =
                reference_schedule(&g, &boundary, 4, DeletionOrder::MisParallel, &mut rng).unwrap();
            assert!(
                is_vpt_fixpoint(&g, &set.active, &boundary, 4),
                "seed {seed}"
            );
            let masked = Masked::from_active(&g, &set.active);
            assert!(
                traverse::is_connected(&masked),
                "coverage set stays connected"
            );
        }
    }

    #[test]
    fn sequential_and_parallel_reach_fixpoints() {
        let g = generators::king_grid_graph(6, 6);
        let boundary: Vec<bool> = (0..36)
            .map(|i| {
                let (x, y) = (i % 6, i / 6);
                x == 0 || y == 0 || x == 5 || y == 5
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let par =
            reference_schedule(&g, &boundary, 4, DeletionOrder::MisParallel, &mut rng).unwrap();
        let seq =
            reference_schedule(&g, &boundary, 4, DeletionOrder::Sequential, &mut rng).unwrap();
        for set in [&par, &seq] {
            assert!(is_vpt_fixpoint(&g, &set.active, &boundary, 4));
        }
        // Sequential performs exactly one deletion per round.
        assert_eq!(seq.rounds, seq.deleted.len());
        // Both disciplines agree on the node count here (all interior nodes
        // of a king grid are eventually redundant at τ = 4 except a spanning
        // pattern; at minimum the counts are close).
        assert_eq!(par.active_count() + par.deleted.len(), 36);
        assert_eq!(seq.active_count() + seq.deleted.len(), 36);
    }

    #[test]
    fn larger_tau_never_needs_more_nodes() {
        let g = generators::king_grid_graph(8, 8);
        let boundary: Vec<bool> = (0..64)
            .map(|i| {
                let (x, y) = (i % 8, i / 8);
                x == 0 || y == 0 || x == 7 || y == 7
            })
            .collect();
        let mut sizes = Vec::new();
        for tau in [3, 4, 6, 8] {
            let mut rng = StdRng::seed_from_u64(42);
            let set = reference_schedule(&g, &boundary, tau, DeletionOrder::MisParallel, &mut rng)
                .unwrap();
            sizes.push(set.active_count());
        }
        for w in sizes.windows(2) {
            assert!(
                w[1] <= w[0],
                "sizes must be non-increasing in tau: {sizes:?}"
            );
        }
    }

    #[test]
    fn rejects_tiny_tau() {
        let g = generators::path_graph(3);
        let mut rng = StdRng::seed_from_u64(0);
        let err = reference_schedule(
            &g,
            &[true, true, true],
            2,
            DeletionOrder::MisParallel,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidTau { tau: 2, min: 3 });
    }

    #[test]
    fn rejects_mismatched_flags() {
        let g = generators::path_graph(3);
        let mut rng = StdRng::seed_from_u64(0);
        let err =
            reference_schedule(&g, &[true], 3, DeletionOrder::MisParallel, &mut rng).unwrap_err();
        assert_eq!(err, SimError::BoundaryMismatch { flags: 1, nodes: 3 });
    }

    #[test]
    fn path_interior_is_protected_by_connectivity() {
        // Interior path nodes are cut vertices: their punctured balls are
        // disconnected, so the conservative VPT keeps the whole relay chain
        // alive — deleting any of them would disconnect the network.
        let g = generators::path_graph(7);
        let mut boundary = vec![false; 7];
        boundary[0] = true;
        boundary[6] = true;
        let mut rng = StdRng::seed_from_u64(5);
        let set =
            reference_schedule(&g, &boundary, 3, DeletionOrder::MisParallel, &mut rng).unwrap();
        assert_eq!(set.active_count(), 7, "no interior relay may sleep");
        assert!(set.deleted.is_empty());
        assert!(is_vpt_fixpoint(&g, &set.active, &boundary, 3));
    }
}
