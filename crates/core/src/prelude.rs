//! One-stop imports for the builder-era API.
//!
//! ```
//! use confine_core::prelude::*;
//! ```
//!
//! brings in the [`Dcc`] builder with its runners, the coverage-set and
//! engine types, and the [`SimError`] they report with.

pub use crate::chaos::{ChaosOptions, ChaosReport, ChaosRunner, Counterexample};
pub use crate::churn::{ChurnMetrics, ChurnModel, ChurnOptions, ChurnReport, ChurnRunner};
pub use crate::config::{ConfineConfig, Guarantee};
pub use crate::dcc::{
    CentralizedRunner, Dcc, DccBuilder, DistributedRunner, IncrementalRunner, RepairRunner,
};
pub use crate::distributed::DistributedStats;
pub use crate::repair::{ReconcileOutcome, RejoinOutcome, RejoinPolicy, RepairOutcome};
pub use crate::schedule::{CoverageSet, DeletionOrder};
pub use crate::sharded::{AnyEngine, ShardedEngine, SweepEngine};
pub use crate::vpt_engine::{
    EngineConfig, EngineConfigBuilder, EngineSnapshot, EngineStats, SnapshotError, VerdictBits,
    VptEngine,
};
pub use confine_netsim::SimError;
