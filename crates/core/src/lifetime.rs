//! Lifetime extension: rotating coverage sets across epochs.
//!
//! The paper motivates partial coverage with energy: "always-on full blanket
//! coverage will exhaust network energy rapidly". This module turns the DCC
//! scheduler into a **rotation** scheme: time is divided into epochs; in
//! every epoch a fresh `τ`-confine coverage set is scheduled on the nodes
//! that still have battery, with deletion priorities biased so that
//! *depleted nodes sleep first*. Awake internal nodes pay one unit of energy
//! per epoch; nodes whose battery empties drop out of the topology.
//!
//! The network's **coverage lifetime** is the number of epochs until no
//! valid coverage set exists any more (some non-redundant node is dead, the
//! alive graph disconnects, or — when a boundary battery budget is given —
//! a boundary node dies).
//!
//! Compared against the two classic baselines:
//!
//! * **always-on** — everybody awake every epoch: lifetime = battery
//!   capacity (in epochs);
//! * **static set** — one DCC schedule reused forever: the chosen awake
//!   nodes die together after `capacity` epochs.
//!
//! Rotation outlives both whenever the deployment has enough redundancy
//! that different epochs can lean on different nodes.

use confine_graph::{traverse, Graph, Masked, NodeId};
use confine_netsim::SimError;
use rand::Rng;

use crate::schedule::{run_schedule, CoverageSet, DeletionOrder};
use crate::vpt_engine::{EngineConfig, VptEngine};

/// Battery and duty-cycle parameters for the rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Battery capacity, measured in awake-epochs per node.
    pub capacity: u32,
    /// Whether boundary nodes draw battery too. Boundary/fence nodes are
    /// often mains- or solar-backed gateways; `false` excludes them from
    /// energy accounting so the rotation effect on internal nodes is
    /// isolated.
    pub boundary_draws_power: bool,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            capacity: 4,
            boundary_draws_power: false,
        }
    }
}

/// One epoch of the rotation.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Awake nodes during this epoch (coverage set of the alive topology).
    pub awake: Vec<NodeId>,
    /// Nodes whose battery is exhausted at the *start* of the epoch.
    pub dead: Vec<NodeId>,
}

/// Outcome of a rotation run.
#[derive(Debug, Clone)]
pub struct LifetimeReport {
    /// The executed epochs, in order.
    pub epochs: Vec<Epoch>,
    /// Residual battery (in epochs) per node at the end of the run.
    pub residual: Vec<u32>,
    /// Why the run stopped.
    pub end_cause: EndCause,
}

/// Why a rotation run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndCause {
    /// A boundary node's battery emptied (only with
    /// [`EnergyModel::boundary_draws_power`]).
    BoundaryDied,
    /// The alive part of the network is no longer connected to the whole
    /// boundary — coverage can no longer be certified.
    AliveGraphDisconnected,
    /// The epoch limit was reached while coverage was still alive.
    EpochLimit,
}

impl LifetimeReport {
    /// The achieved coverage lifetime in epochs.
    pub fn lifetime(&self) -> usize {
        self.epochs.len()
    }

    /// How many distinct nodes served (were awake and internal) at least
    /// once — a fairness indicator for the rotation.
    pub fn distinct_servers(&self, boundary: &[bool]) -> usize {
        let mut seen = std::collections::HashSet::new();
        for e in &self.epochs {
            for &v in &e.awake {
                if !boundary[v.index()] {
                    seen.insert(v);
                }
            }
        }
        seen.len()
    }
}

/// The rotation scheduler.
#[derive(Debug, Clone, Copy)]
pub struct RotationScheduler {
    tau: usize,
    model: EnergyModel,
}

impl RotationScheduler {
    /// Creates a rotation at confine size `tau` with the given energy model.
    ///
    /// # Panics
    ///
    /// Panics if `tau < 3` or the capacity is zero.
    pub fn new(tau: usize, model: EnergyModel) -> Self {
        assert!(tau >= crate::config::MIN_TAU, "confine size must be ≥ 3");
        assert!(model.capacity > 0, "battery capacity must be positive");
        RotationScheduler { tau, model }
    }

    /// Runs up to `max_epochs` epochs of energy-biased DCC scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BoundaryMismatch`] if the flag slice does not
    /// cover the graph, or any error of the underlying per-epoch schedule.
    pub fn run<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        max_epochs: usize,
        rng: &mut R,
    ) -> Result<LifetimeReport, SimError> {
        if boundary.len() != graph.node_count() {
            return Err(SimError::BoundaryMismatch {
                flags: boundary.len(),
                nodes: graph.node_count(),
            });
        }
        let mut residual = vec![self.model.capacity; graph.node_count()];
        let mut epochs = Vec::new();
        // One engine across all epochs: later epochs re-visit neighbourhood
        // shapes from earlier ones, so the fingerprint memo keeps paying.
        let mut engine = VptEngine::new(self.tau, EngineConfig::default());

        for _ in 0..max_epochs {
            // Battery-dead nodes leave the topology.
            let dead: Vec<NodeId> = graph
                .nodes()
                .filter(|&v| {
                    residual[v.index()] == 0
                        && (self.model.boundary_draws_power || !boundary[v.index()])
                })
                .collect();
            if self.model.boundary_draws_power && dead.iter().any(|&v| boundary[v.index()]) {
                return Ok(LifetimeReport {
                    epochs,
                    residual,
                    end_cause: EndCause::BoundaryDied,
                });
            }
            // The alive graph must still connect the boundary to everything
            // it needs; a disconnected alive graph cannot carry the
            // criterion.
            let mut alive = Masked::all_active(graph);
            for &v in &dead {
                alive.deactivate(v);
            }
            if !traverse::is_connected(&alive) {
                return Ok(LifetimeReport {
                    epochs,
                    residual,
                    end_cause: EndCause::AliveGraphDisconnected,
                });
            }

            // Energy-biased schedule: depleted nodes win the deletion
            // elections and sleep.
            let set: CoverageSet = run_schedule(
                graph,
                boundary,
                &dead,
                |v| residual[v.index()] as f64,
                DeletionOrder::MisParallel,
                &mut engine,
                rng,
            )?;

            // Awake nodes pay for the epoch.
            for &v in &set.active {
                if self.model.boundary_draws_power || !boundary[v.index()] {
                    residual[v.index()] = residual[v.index()].saturating_sub(1);
                }
            }
            epochs.push(Epoch {
                awake: set.active,
                dead,
            });
        }
        Ok(LifetimeReport {
            epochs,
            residual,
            end_cause: EndCause::EpochLimit,
        })
    }

    /// Baseline: the same (unbiased) coverage set reused every epoch.
    /// Returns the achieved lifetime in epochs.
    ///
    /// # Errors
    ///
    /// Propagates any error of the underlying schedule.
    pub fn static_baseline<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        rng: &mut R,
    ) -> Result<usize, SimError> {
        let mut engine = VptEngine::new(self.tau, EngineConfig::default());
        let set = run_schedule(
            graph,
            boundary,
            &[],
            |_| 0.0,
            DeletionOrder::MisParallel,
            &mut engine,
            rng,
        )?;
        if self.model.boundary_draws_power || set.active.iter().any(|&v| !boundary[v.index()]) {
            Ok(self.model.capacity as usize)
        } else {
            // Degenerate: nothing internal is ever awake; the set never
            // drains (cap at capacity for comparability).
            Ok(self.model.capacity as usize)
        }
    }

    /// Baseline: everybody awake, no scheduling. Lifetime = capacity.
    pub fn always_on_baseline(&self) -> usize {
        self.model.capacity as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confine_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn king_boundary(w: usize, h: usize) -> Vec<bool> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect()
    }

    #[test]
    fn rotation_outlives_the_static_baseline() {
        // Dense king grid with plenty of internal redundancy.
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let model = EnergyModel {
            capacity: 3,
            boundary_draws_power: false,
        };
        let rot = RotationScheduler::new(4, model);
        let mut rng = StdRng::seed_from_u64(5);
        let report = rot.run(&g, &boundary, 40, &mut rng).unwrap();
        let static_life = rot.static_baseline(&g, &boundary, &mut rng).unwrap();
        assert!(
            report.lifetime() > static_life,
            "rotation {} must beat static {}",
            report.lifetime(),
            static_life
        );
        assert!(report.lifetime() > rot.always_on_baseline());
    }

    #[test]
    fn rotation_spreads_load() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let rot = RotationScheduler::new(
            4,
            EnergyModel {
                capacity: 2,
                boundary_draws_power: false,
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        let report = rot.run(&g, &boundary, 6, &mut rng).unwrap();
        // Across epochs, more distinct internal nodes serve than in any
        // single epoch.
        let single_epoch_max = report
            .epochs
            .iter()
            .map(|e| e.awake.iter().filter(|&&v| !boundary[v.index()]).count())
            .max()
            .unwrap_or(0);
        assert!(
            report.distinct_servers(&boundary) > single_epoch_max,
            "rotation must recruit different nodes over time"
        );
    }

    #[test]
    fn boundary_battery_caps_the_lifetime() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let rot = RotationScheduler::new(
            4,
            EnergyModel {
                capacity: 2,
                boundary_draws_power: true,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let report = rot.run(&g, &boundary, 40, &mut rng).unwrap();
        assert_eq!(report.lifetime(), 2, "boundary dies after its capacity");
        assert_eq!(report.end_cause, EndCause::BoundaryDied);
    }

    #[test]
    fn epoch_limit_is_reported() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let rot = RotationScheduler::new(
            4,
            EnergyModel {
                capacity: 50,
                boundary_draws_power: false,
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        let report = rot.run(&g, &boundary, 3, &mut rng).unwrap();
        assert_eq!(report.lifetime(), 3);
        assert_eq!(report.end_cause, EndCause::EpochLimit);
    }

    #[test]
    fn dead_nodes_never_serve() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let rot = RotationScheduler::new(
            4,
            EnergyModel {
                capacity: 1,
                boundary_draws_power: false,
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let report = rot.run(&g, &boundary, 10, &mut rng).unwrap();
        // With capacity 1, an internal node that served once must never
        // appear again.
        let mut served = std::collections::HashSet::new();
        for e in &report.epochs {
            for &v in &e.awake {
                if !boundary[v.index()] {
                    assert!(served.insert(v), "{v:?} served twice on a 1-epoch battery");
                }
            }
        }
    }
}
