//! Incremental DCC-D: deletion notices instead of per-round re-discovery.
//!
//! The plain distributed protocol ([`crate::distributed::DistributedDcc`])
//! re-floods every adjacency list `k` hops in **every** deletion round —
//! faithful to the paper's description, but the discovery traffic dominates
//! the total cost (see the `cost_table` harness). This module implements the
//! obvious systems optimization:
//!
//! 1. **one** full k-hop discovery at start-up;
//! 2. per round, each deleted node floods a tiny *deletion notice* `k` hops
//!    (over the pre-deletion topology) as its last act;
//! 3. every receiver updates its cached neighbourhood **locally**: it
//!    removes the deleted node and re-runs a bounded BFS over its cached
//!    adjacency lists. This is exact, because every shortest path of length
//!    ≤ `k` from `v` stays within `v`'s `k`-hop ball — the cached subgraph
//!    contains everything needed.
//!
//! The result is the same fixpoint family as the re-flooding protocol (both
//! are maximal vertex deletions by the same local test) at a fraction of the
//! message cost; the equivalence of the *local views* against ground truth
//! is asserted in the tests.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use confine_graph::{Graph, GraphView, Masked, NodeId};
use confine_netsim::protocols::{KHopDiscovery, LocalMinElection};
use confine_netsim::{Context, Engine, Envelope, Protocol, SimError};
use rand::Rng;

use crate::distributed::DistributedStats;
use crate::schedule::CoverageSet;
use crate::sharded::SweepEngine;
use crate::vpt::{independence_radius, neighborhood_radius};
use crate::vpt_engine::{EngineConfig, EvalJob, VptEngine};

/// A node's cached k-hop neighbourhood: member → adjacency list (as learned
/// at start-up, minus deletions). Ordered so every iteration over the view
/// is in node-id order — the punctured graphs it materialises must be
/// bitwise identical across processes for the engine's fingerprint memo.
#[derive(Debug, Clone, Default)]
struct LocalView {
    adj: BTreeMap<NodeId, Vec<NodeId>>,
}

impl LocalView {
    /// Removes a deleted node and evicts members that fell out of the
    /// `k`-hop ball, by a bounded BFS from `center` over the cached lists.
    ///
    /// `own_neighbors` is the center's current direct neighbour list (the
    /// radio knows it without messages).
    fn apply_deletion(
        &mut self,
        center: NodeId,
        own_neighbors: &[NodeId],
        deleted: NodeId,
        k: u32,
    ) {
        self.adj.remove(&deleted);
        for list in self.adj.values_mut() {
            list.retain(|&w| w != deleted);
        }
        // Bounded BFS re-computation of the membership.
        let mut dist: HashMap<NodeId, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        for &w in own_neighbors {
            if self.adj.contains_key(&w) {
                dist.insert(w, 1);
                queue.push_back(w);
            }
        }
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if d >= k {
                continue;
            }
            let Some(nbrs) = self.adj.get(&u) else {
                continue;
            };
            for &w in nbrs.clone().iter() {
                if w != center && self.adj.contains_key(&w) && !dist.contains_key(&w) {
                    dist.insert(w, d + 1);
                    queue.push_back(w);
                }
            }
        }
        self.adj.retain(|origin, _| dist.contains_key(origin));
    }

    /// Materialises the punctured neighbourhood graph (members only, the
    /// center excluded) along with the sorted member ids — the shape the
    /// engine fingerprints.
    fn punctured_graph(&self) -> (Graph, Vec<NodeId>) {
        // BTreeMap keys iterate in ascending order: members come out sorted.
        let members: Vec<NodeId> = self.adj.keys().copied().collect();
        let index: BTreeMap<NodeId, usize> =
            members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut g = Graph::with_node_capacity(members.len());
        g.add_nodes(members.len());
        for (i, &v) in members.iter().enumerate() {
            for w in &self.adj[&v] {
                if let Some(&j) = index.get(w) {
                    if i < j {
                        g.add_edge(NodeId::from(i), NodeId::from(j))
                            // lint: panic-ok(members are distinct and i < j visits each pair once, so the insert cannot collide)
                            .expect("pair once");
                    }
                }
            }
        }
        (g, members)
    }
}

/// Tiny deletion notice flooded `k` hops by a node switching off.
#[derive(Debug, Clone, Copy)]
struct Notice {
    origin: NodeId,
    ttl: u32,
}

/// Per-node state of the notice-flood phase.
struct NoticeFlood {
    is_deleted: bool,
    k: u32,
    /// Ordered: the view-maintenance loop applies deletions in `seen` order.
    seen: BTreeSet<NodeId>,
}

impl Protocol for NoticeFlood {
    type Message = Notice;

    fn on_start(&mut self, ctx: &mut Context<'_, Notice>) {
        if self.is_deleted {
            ctx.broadcast(Notice {
                origin: ctx.node(),
                ttl: self.k - 1,
            });
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Notice>, inbox: &[Envelope<Notice>]) {
        for env in inbox {
            let n = env.payload;
            if n.origin == ctx.node() || self.seen.contains(&n.origin) {
                continue;
            }
            self.seen.insert(n.origin);
            if n.ttl > 0 {
                ctx.broadcast(Notice {
                    origin: n.origin,
                    ttl: n.ttl - 1,
                });
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        true
    }

    fn payload_size(_msg: &Notice) -> usize {
        8
    }
}

/// The incremental distributed scheduler.
///
/// # Example
///
/// ```
/// use confine_core::prelude::*;
/// use confine_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::king_grid_graph(5, 5);
/// let boundary: Vec<bool> = (0..25)
///     .map(|i| { let (x, y) = (i % 5, i / 5); x == 0 || y == 0 || x == 4 || y == 4 })
///     .collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let (set, stats) = Dcc::builder(4).incremental()?.run(&g, &boundary, &mut rng)?;
/// assert!(!set.deleted.is_empty());
/// assert!(stats.discovery_messages > 0);
/// # Ok::<(), confine_netsim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IncrementalDcc {
    tau: usize,
    max_comm_rounds: usize,
}

impl IncrementalDcc {
    pub(crate) fn from_builder(tau: usize, max_comm_rounds: usize) -> Self {
        IncrementalDcc {
            tau,
            max_comm_rounds,
        }
    }

    /// Executes the protocol. Statistics count the one-off discovery under
    /// `discovery_messages` and all notice floods under `election_messages`'
    /// sibling field `bytes`/`comm_rounds` as usual; notice traffic is
    /// reported through [`DistributedStats::discovery_messages`] as well —
    /// it replaces re-discovery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BoundaryMismatch`] if the flag slice does not
    /// cover the graph, or [`SimError::RoundLimitExceeded`] if a phase
    /// exceeds the configured limit.
    pub fn run<R: Rng>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        rng: &mut R,
    ) -> Result<(CoverageSet, DistributedStats), SimError> {
        let mut engine = VptEngine::new(self.tau, EngineConfig::default());
        self.run_with_engine(graph, boundary, &mut engine, rng)
    }

    /// [`IncrementalDcc::run`] with a caller-owned [`VptEngine`] whose
    /// fingerprint memo persists across runs (the [`crate::dcc`] runner
    /// path).
    pub(crate) fn run_with_engine<R: Rng, E: SweepEngine>(
        &self,
        graph: &Graph,
        boundary: &[bool],
        vpt: &mut E,
        rng: &mut R,
    ) -> Result<(CoverageSet, DistributedStats), SimError> {
        if boundary.len() != graph.node_count() {
            return Err(SimError::BoundaryMismatch {
                flags: boundary.len(),
                nodes: graph.node_count(),
            });
        }
        let k = neighborhood_radius(self.tau);
        let m = independence_radius(self.tau);
        let mut masked = Masked::all_active(graph);
        let mut stats = DistributedStats::default();
        let mut deleted = Vec::new();

        // One-off full discovery.
        let mut discovery = Engine::new(&masked, |_| KHopDiscovery::new(k));
        let s = discovery.run(self.max_comm_rounds)?;
        stats.absorb_discovery(s);
        let mut views: Vec<LocalView> = vec![LocalView::default(); graph.node_count()];
        for v in masked.active_nodes() {
            let Some(state) = discovery.state(v) else {
                continue;
            };
            views[v.index()].adj = state
                .neighborhood()
                .iter()
                .map(|(&u, (_, adj))| (u, adj.clone()))
                .collect();
        }
        drop(discovery);

        loop {
            // Local deletability from cached views (no messages): each node
            // ships its cached punctured graph to the engine, which memoizes
            // verdicts by neighbourhood fingerprint across rounds.
            let jobs: Vec<EvalJob> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()])
                .map(|v| {
                    let (graph, members) = views[v.index()].punctured_graph();
                    EvalJob {
                        node: v,
                        members,
                        graph,
                    }
                })
                .collect();
            let verdicts = vpt.evaluate_jobs(&jobs);
            let mut deletable = vec![false; graph.node_count()];
            let mut any = false;
            for (job, ok) in jobs.iter().zip(verdicts.iter()) {
                if ok {
                    deletable[job.node.index()] = true;
                    any = true;
                }
            }
            if !any {
                break;
            }

            // m-hop election (messages counted as election traffic).
            let mut priorities = vec![0.0f64; graph.node_count()];
            for v in masked.active_nodes() {
                if deletable[v.index()] {
                    priorities[v.index()] = rng.gen();
                }
            }
            let mut election = Engine::new(&masked, |v| {
                LocalMinElection::new(m, deletable[v.index()], priorities[v.index()])
            });
            let s = election.run(self.max_comm_rounds)?;
            stats.absorb_election(s);
            let winners: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| deletable[v.index()])
                .filter(|&v| election.state(v).is_some_and(|s| s.is_winner(v)))
                .collect();
            drop(election);
            if winners.is_empty() {
                // With reliable links the globally minimal candidate always
                // wins, so this indicates corrupted election state.
                return Err(SimError::ElectionStalled { retries: 0 });
            }

            // Deletion notices flood k hops over the *pre-deletion* topology
            // (the deleted nodes' last transmissions).
            let winner_flags: Vec<bool> = {
                let mut f = vec![false; graph.node_count()];
                for &w in &winners {
                    f[w.index()] = true;
                }
                f
            };
            let mut notices = Engine::new(&masked, |v| NoticeFlood {
                is_deleted: winner_flags[v.index()],
                k,
                seen: BTreeSet::new(),
            });
            let s = notices.run(self.max_comm_rounds)?;
            stats.absorb_discovery(s); // notices replace re-discovery

            // Local view maintenance (pure computation at each node).
            for v in masked.active_nodes() {
                if winner_flags[v.index()] {
                    continue;
                }
                let Some(flood) = notices.state(v) else {
                    continue;
                };
                let heard: Vec<NodeId> = flood.seen.iter().copied().collect();
                if heard.is_empty() {
                    continue;
                }
                for x in heard {
                    // lint: alloc-ok(dynamically filtered adjacency per deletion notice, not per candidate)
                    let own: Vec<NodeId> = graph
                        .neighbors(v)
                        .filter(|w| masked.contains(*w) && !winner_flags[w.index()] && *w != x)
                        .collect();
                    views[v.index()].apply_deletion(v, &own, x, k);
                }
            }
            drop(notices);

            for v in winners {
                masked.deactivate(v);
                deleted.push(v);
            }
            stats.deletion_rounds += 1;
        }

        let set = CoverageSet {
            active: masked.active_nodes().collect(),
            deleted,
            rounds: stats.deletion_rounds,
        };
        Ok((set, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcc::Dcc;
    use crate::schedule::is_vpt_fixpoint;
    use confine_graph::{generators, traverse};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn king_boundary(w: usize, h: usize) -> Vec<bool> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect()
    }

    #[test]
    fn incremental_reaches_vpt_fixpoint() {
        let g = generators::king_grid_graph(6, 6);
        let boundary = king_boundary(6, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let (set, stats) = Dcc::builder(4)
            .incremental()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        assert!(is_vpt_fixpoint(&g, &set.active, &boundary, 4));
        assert!(!set.deleted.is_empty());
        assert!(stats.deletion_rounds >= 1);
    }

    #[test]
    fn incremental_matches_refooding_protocol_exactly() {
        // Same RNG stream ⇒ identical priorities ⇒ identical elections,
        // because the local views must agree with ground truth each round.
        let g = generators::king_grid_graph(7, 7);
        let boundary = king_boundary(7, 7);
        let (inc, _) = Dcc::builder(4)
            .incremental()
            .unwrap()
            .run(&g, &boundary, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let (full, _) = Dcc::builder(4)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(
            inc.active, full.active,
            "same schedule from the same randomness"
        );
        assert_eq!(inc.deleted, full.deleted);
    }

    #[test]
    fn incremental_is_cheaper_in_discovery_traffic() {
        let g = generators::king_grid_graph(8, 8);
        let boundary = king_boundary(8, 8);
        let (_, inc) = Dcc::builder(4)
            .incremental()
            .unwrap()
            .run(&g, &boundary, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let (_, full) = Dcc::builder(4)
            .distributed()
            .unwrap()
            .run(&g, &boundary, &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert!(
            inc.discovery_messages < full.discovery_messages / 2,
            "incremental {} must undercut re-flooding {} by at least 2×",
            inc.discovery_messages,
            full.discovery_messages
        );
        assert!(inc.bytes < full.bytes);
    }

    #[test]
    fn boundary_protected() {
        let g = generators::king_grid_graph(5, 5);
        let boundary = king_boundary(5, 5);
        let mut rng = StdRng::seed_from_u64(9);
        let (set, _) = Dcc::builder(3)
            .incremental()
            .unwrap()
            .run(&g, &boundary, &mut rng)
            .unwrap();
        for (i, &b) in boundary.iter().enumerate() {
            if b {
                assert!(set.active.contains(&NodeId::from(i)));
            }
        }
        let masked = Masked::from_active(&g, &set.active);
        assert!(traverse::is_connected(&masked));
    }
}
