//! The void preserving transformation (Definition 5 of the paper).
//!
//! A node (or edge) `x` of `H` may be deleted without breaking the
//! `τ`-partitionability of the boundary if its **punctured `k`-hop
//! neighbourhood graph** `Γ^k_H(x)` with `k = ⌈τ/2⌉`
//!
//! 1. is connected, and
//! 2. has all irreducible cycles bounded by `τ`.
//!
//! Intuition: every cycle through `x` short enough to matter can be re-routed
//! as a sum of ≤ `τ` cycles living entirely inside the punctured
//! neighbourhood, so removing `x` cannot make the boundary lose its
//! partition. Both tests are local — a node can evaluate them from `k`-hop
//! connectivity alone, which is what makes the scheduler distributed.

use confine_cycles::horton::{
    connected_and_max_irreducible_at_most_with, max_irreducible_at_most_with, CycleScratch,
};
use confine_graph::{traverse, EdgeView, Graph, GraphView, NeighborhoodScratch, NodeId};

/// Reusable scratch state for repeated VPT evaluations.
///
/// Holds the GF(2) elimination buffers of the irreducible-cycle test plus the
/// epoch-stamped ball-extraction arena ([`NeighborhoodScratch`]); one scratch
/// per evaluating thread removes all per-candidate heap churn — ball BFS,
/// induced-subgraph build and Horton elimination alike — from the scheduler's
/// hot loop. A fresh (`Default`) scratch is always valid, and the
/// [`crate::vpt_engine::VptEngine`] keeps its per-worker scratches alive
/// across runs and epochs.
#[derive(Debug, Clone, Default)]
pub struct VptScratch {
    pub(crate) cycles: CycleScratch,
    pub(crate) hood: NeighborhoodScratch,
}

/// The discovery radius `k = ⌈τ/2⌉` used by the transformation. Saturates
/// at `u32::MAX` for (absurd) `tau` beyond `u32` range — a radius that
/// already exceeds any graph diameter the substrate can represent.
pub fn neighborhood_radius(tau: usize) -> u32 {
    u32::try_from(tau).map_or(u32::MAX, |t| t.div_ceil(2))
}

/// The independence radius `m = ⌈τ/2⌉ + 1` at which deletions are safely
/// parallel (two deleted nodes ≥ `m` hops apart have disjoint, mutually
/// invariant punctured neighbourhoods).
pub fn independence_radius(tau: usize) -> u32 {
    neighborhood_radius(tau) + 1
}

/// Materialises the subgraph induced by `nodes` from an arbitrary view.
///
/// Returns the graph and the child→parent node mapping (sorted by parent
/// id). Inactive nodes are skipped.
pub fn induced_from_view<V: GraphView>(view: &V, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut members: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&v| view.contains(v))
        .collect();
    members.sort_unstable();
    members.dedup();
    let mut index = vec![usize::MAX; view.node_bound()];
    for (i, &v) in members.iter().enumerate() {
        index[v.index()] = i;
    }
    let mut g = Graph::with_node_capacity(members.len());
    g.add_nodes(members.len());
    for (i, &v) in members.iter().enumerate() {
        for w in view.view_neighbors(v) {
            let j = index[w.index()];
            if j != usize::MAX && i < j {
                g.add_edge(NodeId::from(i), NodeId::from(j))
                    // lint: panic-ok(members are deduped and i < j visits each pair once, so the insert cannot collide)
                    .expect("pair visited once");
            }
        }
    }
    (g, members)
}

/// Evaluates the vertex-deletion condition of the `τ`-void preserving
/// transformation for `v` on the current view.
///
/// Returns `true` when `v` may be switched off: its punctured
/// `⌈τ/2⌉`-hop neighbourhood graph is connected and all its irreducible
/// cycles are ≤ `τ`.
///
/// # Example
///
/// ```
/// use confine_core::vpt::is_vertex_deletable;
/// use confine_graph::{generators, NodeId};
///
/// // The hub of a wheel is deletable for τ = rim length (the rim replaces
/// // its triangles), but not for smaller τ.
/// let g = generators::wheel_graph(6);
/// assert!(is_vertex_deletable(&g, NodeId(0), 6));
/// assert!(!is_vertex_deletable(&g, NodeId(0), 5));
/// ```
pub fn is_vertex_deletable<V: GraphView>(view: &V, v: NodeId, tau: usize) -> bool {
    is_vertex_deletable_with(view, v, tau, &mut VptScratch::default())
}

/// Scratch-reusing form of [`is_vertex_deletable`].
///
/// Identical result; the caller owns the [`VptScratch`] and amortises the
/// GF(2) elimination buffers across many candidates (the [`VptEngine`] keeps
/// one scratch per worker thread).
///
/// [`VptEngine`]: crate::vpt_engine::VptEngine
pub fn is_vertex_deletable_with<V: GraphView>(
    view: &V,
    v: NodeId,
    tau: usize,
    scratch: &mut VptScratch,
) -> bool {
    let k = neighborhood_radius(tau);
    scratch.hood.punctured(view, v, k);
    scratch_csr_ok(scratch, tau)
}

/// Definition 5 on the punctured CSR most recently extracted into
/// `scratch.hood` — the allocation-free path the engine's workers run.
///
/// The CSR build assigns node and edge ids exactly as
/// [`induced_from_view`] does on the same member list, so verdicts (and the
/// engine's fingerprints) are bit-identical across the two substrates.
pub(crate) fn scratch_csr_ok(scratch: &mut VptScratch, tau: usize) -> bool {
    let VptScratch { cycles, hood } = scratch;
    connected_and_max_irreducible_at_most_with(hood.csr(), tau, cycles)
}

/// Evaluates the edge-deletion condition of the transformation for the edge
/// `{a, b}`.
///
/// The punctured graph of an edge keeps both endpoints but removes the edge
/// itself: the induced subgraph on `N^k(a) ∪ N^k(b) ∪ {a, b}` minus
/// `{a, b}`-the-edge must be connected with irreducible cycles ≤ `τ`.
///
/// Returns `false` when `a` and `b` are not adjacent in the view.
pub fn is_edge_deletable<V: GraphView>(view: &V, a: NodeId, b: NodeId, tau: usize) -> bool {
    if !view.contains(a) || !view.contains(b) || !view.view_neighbors(a).any(|w| w == b) {
        return false;
    }
    let k = neighborhood_radius(tau);
    let mut region = traverse::k_hop_neighbors(view, a, k);
    region.extend(traverse::k_hop_neighbors(view, b, k));
    region.push(a);
    region.push(b);
    let (mut local, members) = induced_from_view(view, &region);
    // Both endpoints were pushed into the region, so the lookups cannot
    // miss; answer "not deletable" (never unsafe) if that ever breaks.
    let (Ok(ia), Ok(ib)) = (members.binary_search(&a), members.binary_search(&b)) else {
        return false;
    };
    let Some(e) = local.edge_between(NodeId::from(ia), NodeId::from(ib)) else {
        return false;
    };
    local = local.without_edge(e);
    vpt_graph_ok(&local, tau)
}

/// The two-part test of Definition 5 on an already-materialised punctured
/// neighbourhood graph.
///
/// Generic over [`EdgeView`], so it accepts both owned [`Graph`]s (the
/// protocol paths ship those) and packed `CsrGraph`s.
pub fn vpt_graph_ok<G: EdgeView>(punctured: &G, tau: usize) -> bool {
    vpt_graph_ok_with(punctured, tau, &mut VptScratch::default())
}

/// Scratch-reusing form of [`vpt_graph_ok`].
pub fn vpt_graph_ok_with<G: EdgeView>(punctured: &G, tau: usize, scratch: &mut VptScratch) -> bool {
    traverse::is_connected(punctured)
        && max_irreducible_at_most_with(punctured, tau, &mut scratch.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confine_graph::{generators, Masked};

    #[test]
    fn radii() {
        assert_eq!(neighborhood_radius(3), 2);
        assert_eq!(neighborhood_radius(4), 2);
        assert_eq!(neighborhood_radius(5), 3);
        assert_eq!(neighborhood_radius(6), 3);
        assert_eq!(independence_radius(3), 3);
        assert_eq!(independence_radius(6), 4);
    }

    #[test]
    fn induced_from_view_respects_mask() {
        let g = generators::cycle_graph(6);
        let mut m = Masked::all_active(&g);
        m.deactivate(NodeId(2));
        let nodes: Vec<NodeId> = (0..6).map(NodeId::from).collect();
        let (sub, members) = induced_from_view(&m, &nodes);
        assert_eq!(members.len(), 5);
        assert_eq!(sub.edge_count(), 4, "path 3-4-5-0-1");
    }

    #[test]
    fn leaf_and_isolated_nodes_are_deletable() {
        let g = generators::path_graph(4);
        // Leaves have a connected (path-shaped) punctured ball: deletable.
        assert!(is_vertex_deletable(&g, NodeId(0), 3));
        assert!(is_vertex_deletable(&g, NodeId(3), 3));
        // Interior tree nodes are cut vertices: their punctured ball is
        // disconnected, so the conservative test refuses them.
        assert!(!is_vertex_deletable(&g, NodeId(1), 3));
        assert!(!is_vertex_deletable(&g, NodeId(2), 3));
        let mut lone = confine_graph::Graph::new();
        let v = lone.add_node();
        assert!(
            is_vertex_deletable(&lone, v, 3),
            "empty neighbourhood is fine"
        );
    }

    #[test]
    fn king_grid_interior_deletable_at_tau_4() {
        // Interior node of a king grid: its punctured neighbourhood is
        // connected and triangulated enough that all irreducible cycles stay
        // ≤ 4 (the square left behind by the deletion).
        let g = generators::king_grid_graph(5, 5);
        let center = NodeId(12);
        assert!(is_vertex_deletable(&g, center, 4));
        // At τ = 3 the deletion would leave the hollow N-E-S-W square where
        // the centre was — an irreducible 4-cycle in the punctured graph —
        // so the local test must refuse.
        assert!(!is_vertex_deletable(&g, center, 3));
    }

    #[test]
    fn bare_cycle_nodes_not_deletable_at_small_tau() {
        // On a bare 8-cycle the punctured 2-hop ball of any node is two
        // disjoint 2-paths: disconnected ⇒ not deletable for τ ≤ 4. At
        // τ = 8 the ball spans the remaining 7-path: connected, acyclic ⇒
        // deletable (the only cycle it destroys is longer than any τ < 8
        // partition could have used anyway — and for τ = 8 boundary nodes
        // are protected separately).
        let g = generators::cycle_graph(8);
        for v in g.nodes() {
            assert!(!is_vertex_deletable(&g, v, 4));
            assert!(is_vertex_deletable(&g, v, 8));
        }
    }

    #[test]
    fn wheel_hub_threshold() {
        for rim in 4..9 {
            let g = generators::wheel_graph(rim);
            let hub = NodeId(0);
            for tau in 3..=rim + 2 {
                let expected = tau >= rim;
                assert_eq!(
                    is_vertex_deletable(&g, hub, tau),
                    expected,
                    "rim {rim} tau {tau}"
                );
            }
        }
    }

    #[test]
    fn disconnected_punctured_graph_blocks_deletion() {
        // Two triangles sharing only the node v: removing v disconnects its
        // neighbourhood.
        let g =
            confine_graph::Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)])
                .unwrap();
        assert!(
            !is_vertex_deletable(&g, NodeId(0), 3),
            "cut vertex must stay"
        );
        assert!(is_vertex_deletable(&g, NodeId(1), 3));
    }

    #[test]
    fn edge_deletable_cases() {
        // In a king-grid square, a diagonal is deletable at τ = 4 (the
        // square and other diagonal remain) but the test at τ = 3 must
        // also pass thanks to the second diagonal. Use a single square:
        let g =
            confine_graph::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)])
                .unwrap();
        assert!(is_edge_deletable(&g, NodeId(0), NodeId(2), 3));
        // After conceptually removing one diagonal, the other is NOT
        // deletable at τ = 3: the square would become a hollow 4-cycle.
        let e = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        let h = g.without_edge(e);
        assert!(!is_edge_deletable(&h, NodeId(1), NodeId(3), 3));
        assert!(is_edge_deletable(&h, NodeId(1), NodeId(3), 4));
    }

    #[test]
    fn edge_deletable_rejects_non_edges() {
        let g = generators::path_graph(4);
        assert!(
            !is_edge_deletable(&g, NodeId(0), NodeId(2), 3),
            "non-edges never delete"
        );
        assert!(
            !is_edge_deletable(&g, NodeId(0), NodeId(1), 3),
            "a bridge would disconnect its punctured region"
        );
    }

    #[test]
    fn deletability_on_masked_views() {
        let g = generators::wheel_graph(6);
        let mut m = Masked::all_active(&g);
        // Remove one rim node: the hub's punctured neighbourhood becomes a
        // path of 5 rim nodes — connected, no cycles → deletable even at 3.
        m.deactivate(NodeId(3));
        assert!(is_vertex_deletable(&m, NodeId(0), 3));
    }
}
