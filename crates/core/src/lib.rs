//! Confine coverage: distributed, connectivity-only coverage scheduling by
//! topological graph approaches.
//!
//! This crate is the primary contribution of *"Distributed Coverage in
//! Wireless Ad Hoc and Sensor Networks by Topological Graph Approaches"*
//! (Dong, Liu, Liu, Liao — ICDCS 2010), rebuilt as a Rust library:
//!
//! * [`config`] — the confine-coverage granularity model (Proposition 1):
//!   confine size `τ` + sensing ratio `γ` → blanket or bounded-hole
//!   guarantee, and the `τ`-selection helpers that give DCC its edge over
//!   fixed-granularity baselines.
//! * [`vpt`] — the void preserving transformation (Definition 5): the local
//!   deletability test at the heart of the scheduler.
//! * [`edges`] — the edge-deletion operator of Definition 5 as a link
//!   pruner (an ablation the paper leaves unexercised).
//! * [`schedule`] — centralized DCC reference scheduler (maximal vertex
//!   deletion with m-hop-MIS parallel rounds).
//! * [`distributed`] — DCC-D: the same algorithm as an actual
//!   message-passing protocol with cost accounting.
//! * [`incremental`] — an optimized DCC-D that replaces per-round
//!   re-discovery with k-hop deletion notices and local view maintenance.
//! * [`repair`] — failure-adaptive coverage repair: heartbeat detection of
//!   crashed active nodes, k-hop wake-up of sleeping neighbours and local
//!   re-scheduling back to a VPT fixpoint, with Proposition-1 degradation
//!   bounds.
//! * [`chaos`] — the deterministic chaos harness: seed-triple campaigns of
//!   crash / recover / partition faults against the full schedule → repair
//!   → rejoin loop, with invariant oracles, replayable traces and a ddmin
//!   fault-script shrinker.
//! * [`churn`] — streaming coverage maintenance under continuous churn:
//!   mobility, duty-cycling and radio degradation feed per-round topology
//!   deltas into the repair loop, with graceful-degradation accounting
//!   (coverage-hole exposure, repair traffic, false-suspicion rate).
//! * [`verify`] — exact criterion verification (Propositions 2/3) and the
//!   boundary-coning pre-processing for multiply-connected areas.
//! * [`moebius`] — the Figure 1 Möbius-band network separating the
//!   cycle-partition criterion from the homology criterion.
//! * [`lifetime`] — an extension beyond the paper's evaluation: epoch-based
//!   rotation of coverage sets with energy-biased deletion priorities.
//!
//! # Quick start
//!
//! ```
//! use confine_core::config::best_tau_for_requirement;
//! use confine_core::prelude::*;
//! use confine_graph::generators;
//! use rand::SeedableRng;
//!
//! // A densely triangulated grid; outer ring is the boundary.
//! let g = generators::king_grid_graph(6, 6);
//! let boundary: Vec<bool> = (0..36)
//!     .map(|i| { let (x, y) = (i % 6, i / 6); x == 0 || y == 0 || x == 5 || y == 5 })
//!     .collect();
//!
//! // Application: γ = 1 sensing ratio, blanket coverage required.
//! let tau = best_tau_for_requirement(1.0, 1.0, 0.0).expect("γ ≤ √3");
//! assert_eq!(tau, 6);
//!
//! // One runner holds the parallel, memoizing VPT engine; reuse it across
//! // runs to keep the fingerprint memo warm.
//! let mut runner = Dcc::builder(tau).centralized()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let set = runner.run(&g, &boundary, &mut rng)?;
//! assert!(set.active_count() < 36, "some interior nodes sleep");
//! # Ok::<(), SimError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod churn;
pub mod config;
pub mod dcc;
pub mod distributed;
pub mod edges;
pub mod incremental;
pub mod lifetime;
pub mod moebius;
pub mod prelude;
pub mod repair;
pub mod schedule;
pub mod sharded;
pub mod verify;
pub mod vpt;
pub mod vpt_engine;

pub use config::{ConfineConfig, Guarantee};
pub use dcc::{Dcc, DccBuilder};
pub use schedule::{CoverageSet, DeletionOrder};
pub use sharded::{AnyEngine, ShardedEngine, SweepEngine};
pub use vpt_engine::{
    EngineConfig, EngineConfigBuilder, EngineSnapshot, EngineStats, SnapshotError, VerdictBits,
    VptEngine,
};
