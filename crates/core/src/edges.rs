//! Link pruning by edge-deletion VPT (the second operator of Definition 5).
//!
//! The paper's evaluation only exercises *vertex* deletion, but Definition 5
//! explicitly allows deleting **edges** under the same local condition: the
//! punctured neighbourhood of the edge stays connected with irreducible
//! cycles ≤ `τ`. Pruning links does not put nodes to sleep, but it thins the
//! communication structure a coverage set must maintain (fewer links to
//! schedule, less idle listening, simpler routing state) while preserving
//! the criterion exactly like vertex deletion does.
//!
//! [`prune_edges`] runs the edge operator to a fixpoint on a given awake
//! topology; the typical pipeline is vertex scheduling first, then link
//! pruning on the survivors.
//!
//! Soundness note: the edge operator preserves τ-partitionability of every
//! cycle-space target that avoids the pruned edges (partition cycles
//! through a pruned edge pair up and re-route through its punctured
//! region). The boundary cycle must therefore keep its own links:
//! edges between two protected nodes are never pruned.

use confine_graph::{Graph, GraphError, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::vpt::is_edge_deletable;

/// Result of a link-pruning run.
#[derive(Debug, Clone)]
pub struct PrunedLinks {
    /// The thinned graph (same node ids; edge ids re-assigned).
    pub graph: Graph,
    /// The removed links as canonical node pairs, in removal order.
    pub removed: Vec<(NodeId, NodeId)>,
}

/// Prunes links of `graph` to an edge-deletion fixpoint at confine size
/// `tau`.
///
/// Edges with a `protected` endpoint are only removed when **both**
/// endpoints keep at least one other link (boundary nodes must stay wired).
/// Candidates are visited in random order, one removal at a time (the edge
/// operator's punctured regions overlap too easily for safe batching).
///
/// # Errors
///
/// Returns an error if `protected.len() != graph.node_count()`.
///
/// # Panics
///
/// Panics if `tau < 3`.
pub fn prune_edges<R: Rng>(
    graph: &Graph,
    protected: &[bool],
    tau: usize,
    rng: &mut R,
) -> Result<PrunedLinks, GraphError> {
    assert!(tau >= crate::config::MIN_TAU, "confine size must be ≥ 3");
    if protected.len() != graph.node_count() {
        // Reuse the graph error vocabulary for the arity mismatch.
        return Err(GraphError::NodeOutOfBounds {
            node: NodeId::from(protected.len()),
            node_count: graph.node_count(),
        });
    }

    let mut current = graph.clone();
    let mut removed = Vec::new();
    loop {
        let mut candidates: Vec<(NodeId, NodeId)> =
            current.edges().map(|(_, a, b)| (a, b)).collect();
        candidates.shuffle(rng);
        let mut progressed = false;
        for (a, b) in candidates {
            // Boundary links carry the criterion's target cycle: keep them.
            if protected[a.index()] && protected[b.index()] {
                continue;
            }
            if current.degree(a) <= 1 || current.degree(b) <= 1 {
                continue; // never strand a node
            }
            if is_edge_deletable(&current, a, b, tau) {
                // is_edge_deletable just verified adjacency on `current`,
                // and removing other candidate pairs cannot delete {a, b}.
                let Some(e) = current.edge_between(a, b) else {
                    continue;
                };
                current = current.without_edge(e);
                removed.push((a, b));
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    Ok(PrunedLinks {
        graph: current,
        removed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use confine_graph::{generators, traverse};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rim_flags(side: usize) -> Vec<bool> {
        (0..side * side)
            .map(|i| {
                let (x, y) = (i % side, i / side);
                x == 0 || y == 0 || x == side - 1 || y == side - 1
            })
            .collect()
    }

    #[test]
    fn king_grid_sheds_redundant_links() {
        let g = generators::king_grid_graph(5, 5);
        let protected = rim_flags(5);
        let mut rng = StdRng::seed_from_u64(3);
        let pruned = prune_edges(&g, &protected, 4, &mut rng).unwrap();
        assert!(
            !pruned.removed.is_empty(),
            "doubly-triangulated squares have removable diagonals"
        );
        assert!(pruned.graph.edge_count() < g.edge_count());
        assert!(traverse::is_connected(&pruned.graph));
        // No rim link was touched.
        for (a, b) in &pruned.removed {
            assert!(
                !(protected[a.index()] && protected[b.index()]),
                "boundary link {a:?}-{b:?} pruned"
            );
        }
    }

    #[test]
    fn pruning_preserves_partitionability_of_the_rim() {
        use confine_cycles::partition::is_tau_partitionable;
        use confine_cycles::Cycle;
        let side = 5;
        let g = generators::king_grid_graph(side, side);
        let protected = rim_flags(side);
        let mut rng = StdRng::seed_from_u64(9);
        let tau = 4;
        let pruned = prune_edges(&g, &protected, tau, &mut rng).unwrap();

        // Rim cycle in the pruned graph (rim links are protected).
        let mut seq = Vec::new();
        for x in 0..side {
            seq.push(NodeId::from(x));
        }
        for y in 1..side {
            seq.push(NodeId::from(y * side + side - 1));
        }
        for x in (0..side - 1).rev() {
            seq.push(NodeId::from((side - 1) * side + x));
        }
        for y in (1..side - 1).rev() {
            seq.push(NodeId::from(y * side));
        }
        let rim = Cycle::from_vertex_cycle(&pruned.graph, &seq).expect("rim links survive pruning");
        assert!(is_tau_partitionable(&pruned.graph, rim.edge_vec(), tau));
    }

    #[test]
    fn bridges_and_stranding_are_refused() {
        // A triangle with a pendant node: the pendant link is a bridge and
        // must survive; triangle edges may not strand a degree-1 endpoint.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let pruned = prune_edges(&g, &[false; 4], 3, &mut rng).unwrap();
        assert!(pruned.graph.has_edge(NodeId(2), NodeId(3)), "bridge kept");
        assert!(traverse::is_connected(&pruned.graph));
        assert!(pruned.graph.nodes().all(|v| pruned.graph.degree(v) >= 1));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let g = generators::cycle_graph(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(prune_edges(&g, &[false; 2], 3, &mut rng).is_err());
    }

    use confine_graph::Graph;
}
