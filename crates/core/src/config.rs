//! Confine-coverage granularity configuration (Sec. III of the paper).
//!
//! Confine coverage has two knobs: the **confine size** `τ` (points must be
//! surrounded by a cycle of ≤ `τ` hops) and the **sensing ratio**
//! `γ = Rc / Rs`. Proposition 1 links them to a guarantee:
//!
//! * `γ ≤ 2·sin(π/τ)` — a `τ`-confine coverage is a full **blanket**
//!   coverage (no holes at all);
//! * `2·sin(π/τ) < γ ≤ 2` — **partial** coverage with every hole's diameter
//!   bounded by `(τ − 2)·Rc`;
//! * `γ > 2` — no connectivity-based method can bound hole sizes.

use std::error::Error;
use std::fmt;

/// The smallest meaningful confine size: cycles in simple graphs have at
/// least 3 hops.
pub const MIN_TAU: usize = 3;

/// Default heartbeat silence timeout, in communication rounds: a neighbour
/// silent for more than this many consecutive rounds is suspected crashed
/// (see [`confine_netsim::faults::Heartbeat`]). Raising it slows crash
/// detection by the same number of rounds but drives the false-suspicion
/// probability under per-message loss `p` down to `p^(timeout+1)` —
/// at the default and `p = 0.3` that is below 1%.
pub const DEFAULT_HEARTBEAT_TIMEOUT: usize = 3;

/// Default number of times a lossy-link discovery rebroadcasts each record
/// (see [`confine_netsim::protocols::RepeatedDiscovery`]). With loss `p`
/// a record crosses each hop with probability `1 − p^r`; 3 repeats keep the
/// per-hop failure under 3% at `p = 0.3` at roughly 3× the message cost.
pub const DEFAULT_DISCOVERY_REPEATS: u32 = 3;

/// Default number of extra election attempts the distributed scheduler makes
/// when a round produces no winner (possible only when candidates crash
/// mid-election). Each retry redraws priorities; once the budget is spent
/// the run aborts with `SimError::ElectionStalled` rather than spinning.
pub const DEFAULT_RETRY_BUDGET: usize = 4;

/// Jitter window, in communication rounds, applied to election *retries*
/// (never the first attempt): each retrying candidate delays its priority
/// re-announcement by `retry_jitter(node, attempt, WINDOW)` rounds — a pure
/// function of node id and attempt number, so replays stay bitwise
/// identical while a partition heal can no longer re-collide every stalled
/// candidate in the same round (the synchronized retry storm). The window
/// trades a few extra rounds of retry latency for desynchronization; 8 is
/// comfortably larger than the election flood depth `m` at the default τ.
pub const ELECTION_JITTER_WINDOW: u32 = 8;

/// What a `τ`-confine coverage guarantees for a given sensing ratio
/// (Proposition 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Guarantee {
    /// Full blanket coverage: maximum hole diameter 0.
    Blanket,
    /// Partial coverage with holes bounded by the given diameter (in the
    /// same unit as `Rc`).
    Partial {
        /// Upper bound on any hole's diameter: `(τ − 2) · Rc`.
        max_hole_diameter: f64,
    },
    /// `γ > 2`: connectivity cannot bound hole sizes.
    Unbounded,
}

/// Errors from [`ConfineConfig`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `τ` was below [`MIN_TAU`].
    TauTooSmall {
        /// The offending value.
        tau: usize,
    },
    /// The sensing ratio was not a positive finite number.
    InvalidRatio,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::TauTooSmall { tau } => {
                write!(f, "confine size {tau} below minimum {MIN_TAU}")
            }
            ConfigError::InvalidRatio => write!(f, "sensing ratio must be positive and finite"),
        }
    }
}

impl Error for ConfigError {}

/// A validated confine-coverage configuration.
///
/// # Example
///
/// ```
/// use confine_core::config::{ConfineConfig, Guarantee};
///
/// // γ = 1: hexagon cycles still blanket-cover (2·sin(π/6) = 1).
/// let c = ConfineConfig::new(6, 1.0)?;
/// assert_eq!(c.guarantee(1.0), Guarantee::Blanket);
///
/// // γ = √3 is the classic triangle threshold of Ghrist et al.
/// let c = ConfineConfig::new(3, 3f64.sqrt())?;
/// assert_eq!(c.guarantee(1.0), Guarantee::Blanket);
/// # Ok::<(), confine_core::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfineConfig {
    tau: usize,
    gamma: f64,
}

impl ConfineConfig {
    /// Creates a configuration with confine size `tau` and sensing ratio
    /// `gamma = Rc / Rs`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TauTooSmall`] for `tau < 3` and
    /// [`ConfigError::InvalidRatio`] for non-positive or non-finite ratios.
    pub fn new(tau: usize, gamma: f64) -> Result<Self, ConfigError> {
        if tau < MIN_TAU {
            return Err(ConfigError::TauTooSmall { tau });
        }
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(ConfigError::InvalidRatio);
        }
        Ok(ConfineConfig { tau, gamma })
    }

    /// The confine size `τ`.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The sensing ratio `γ = Rc / Rs`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The guarantee this configuration provides (Proposition 1), with hole
    /// bounds scaled by the communication range `rc`.
    pub fn guarantee(&self, rc: f64) -> Guarantee {
        if self.gamma <= blanket_ratio_threshold(self.tau) + 1e-12 {
            Guarantee::Blanket
        } else if self.gamma <= 2.0 {
            Guarantee::Partial {
                max_hole_diameter: (self.tau as f64 - 2.0) * rc,
            }
        } else {
            Guarantee::Unbounded
        }
    }
}

/// The blanket threshold `2·sin(π/τ)` of Proposition 1: a `τ`-confine
/// coverage blankets the area iff `γ` is at most this.
///
/// # Panics
///
/// Panics if `tau < 3`.
pub fn blanket_ratio_threshold(tau: usize) -> f64 {
    assert!(tau >= MIN_TAU, "confine size must be at least {MIN_TAU}");
    2.0 * (std::f64::consts::PI / tau as f64).sin()
}

/// The largest confine size `τ` whose cycles still *blanket*-cover at
/// sensing ratio `gamma`, or `None` when even triangles cannot
/// (`γ > 2·sin(π/3) = √3`).
///
/// Larger `τ` means sparser coverage sets, so schedulers should use the
/// largest τ that still meets the application's requirement — this is
/// exactly the flexibility HGC lacks (it is pinned to `τ = 3`).
pub fn max_blanket_tau(gamma: f64) -> Option<usize> {
    if gamma <= 0.0 {
        return Some(usize::MAX);
    }
    if gamma > blanket_ratio_threshold(MIN_TAU) + 1e-12 {
        return None;
    }
    // 2 sin(π/τ) ≥ γ  ⇔  τ ≤ π / asin(γ/2)   (γ ≤ 2). Overshoot the float
    // estimate by two, then walk down to the exact integer threshold.
    let bound = std::f64::consts::PI / (gamma / 2.0).min(1.0).asin();
    let mut tau = (bound.floor() as usize).max(MIN_TAU) + 2;
    while tau > MIN_TAU && blanket_ratio_threshold(tau) + 1e-12 < gamma {
        tau -= 1;
    }
    Some(tau)
}

/// The largest confine size meeting a coverage *requirement*: blanket
/// coverage when `max_hole_diameter == 0`, otherwise holes bounded by
/// `max_hole_diameter` (in units of `rc`).
///
/// Combines both branches of Proposition 1: a hole budget `D` admits
/// `τ ≤ D/rc + 2` via the partial branch, and possibly a larger `τ` via the
/// blanket branch when `γ` is small. Returns `None` when no `τ ≥ 3`
/// qualifies.
pub fn best_tau_for_requirement(gamma: f64, rc: f64, max_hole_diameter: f64) -> Option<usize> {
    let blanket = max_blanket_tau(gamma);
    if max_hole_diameter <= 0.0 {
        return blanket;
    }
    if gamma > 2.0 {
        return None;
    }
    let partial = ((max_hole_diameter / rc) + 2.0 + 1e-12).floor() as usize;
    let partial = (partial >= MIN_TAU).then_some(partial);
    match (blanket, partial) {
        (Some(b), Some(p)) => Some(b.max(p)),
        (b, p) => b.or(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_paper_examples() {
        // τ = 3 → √3; τ = 4 → √2; τ = 6 → 1. (Sec. III-C)
        assert!((blanket_ratio_threshold(3) - 3f64.sqrt()).abs() < 1e-12);
        assert!((blanket_ratio_threshold(4) - 2f64.sqrt()).abs() < 1e-12);
        assert!((blanket_ratio_threshold(6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_blanket_tau_examples() {
        assert_eq!(max_blanket_tau(3f64.sqrt()), Some(3));
        assert_eq!(max_blanket_tau(2f64.sqrt()), Some(4));
        assert_eq!(max_blanket_tau(1.0), Some(6));
        assert_eq!(max_blanket_tau(0.5), Some(12));
        assert_eq!(
            max_blanket_tau(1.9),
            None,
            "γ > √3: triangles cannot blanket"
        );
    }

    #[test]
    fn max_blanket_tau_is_tight() {
        for tau in 3..40 {
            let gamma = blanket_ratio_threshold(tau);
            assert_eq!(
                max_blanket_tau(gamma),
                Some(tau),
                "threshold itself qualifies"
            );
            assert_eq!(
                max_blanket_tau(gamma + 1e-9),
                if tau == 3 { None } else { Some(tau - 1) },
                "just above the threshold drops one size"
            );
        }
    }

    #[test]
    fn guarantee_branches() {
        let rc = 2.0;
        assert_eq!(
            ConfineConfig::new(4, 1.0).unwrap().guarantee(rc),
            Guarantee::Blanket
        );
        assert_eq!(
            ConfineConfig::new(4, 1.8).unwrap().guarantee(rc),
            Guarantee::Partial {
                max_hole_diameter: 4.0
            }
        );
        assert_eq!(
            ConfineConfig::new(5, 2.5).unwrap().guarantee(rc),
            Guarantee::Unbounded
        );
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            ConfineConfig::new(2, 1.0),
            Err(ConfigError::TauTooSmall { tau: 2 })
        );
        assert_eq!(ConfineConfig::new(3, 0.0), Err(ConfigError::InvalidRatio));
        assert_eq!(
            ConfineConfig::new(3, f64::NAN),
            Err(ConfigError::InvalidRatio)
        );
        let ok = ConfineConfig::new(5, 1.5).unwrap();
        assert_eq!(ok.tau(), 5);
        assert_eq!(ok.gamma(), 1.5);
    }

    #[test]
    fn requirement_combines_both_branches() {
        // γ = 1, rc = 1: blanket admits τ = 6. A hole budget of 1.2 admits
        // τ = 3 via the partial branch — blanket wins.
        assert_eq!(best_tau_for_requirement(1.0, 1.0, 1.2), Some(6));
        // γ = 2: no blanket τ; budget 1.2 → τ = 3; budget 3.0 → τ = 5.
        assert_eq!(best_tau_for_requirement(2.0, 1.0, 1.2), Some(3));
        assert_eq!(best_tau_for_requirement(2.0, 1.0, 3.0), Some(5));
        // γ = 2, budget 0.5 < 1: partial needs τ ≤ 2.5 → impossible.
        assert_eq!(best_tau_for_requirement(2.0, 1.0, 0.5), None);
        // Blanket requirement delegates to max_blanket_tau.
        assert_eq!(best_tau_for_requirement(1.0, 1.0, 0.0), Some(6));
        // γ > 2: nothing can be guaranteed.
        assert_eq!(best_tau_for_requirement(2.3, 1.0, 5.0), None);
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            ConfigError::TauTooSmall { tau: 1 }.to_string(),
            "confine size 1 below minimum 3"
        );
        assert_eq!(
            ConfigError::InvalidRatio.to_string(),
            "sensing ratio must be positive and finite"
        );
    }
}
