//! Parallel, memoizing evaluation engine for the void preserving
//! transformation.
//!
//! Every DCC round asks the same question for many nodes: *is the punctured
//! `⌈τ/2⌉`-hop neighbourhood graph of `v` connected with all irreducible
//! cycles ≤ τ?* (Definition 5). The test is **local** — its answer depends
//! only on the k-hop ball of `v` — which makes it both embarrassingly
//! parallel within a round and highly cacheable across rounds:
//!
//! * **fan-out** — candidate evaluations share no mutable state, so the
//!   engine spreads them over worker threads (`std::thread::scope`; no
//!   dependency footprint), each worker owning one [`VptScratch`] so the
//!   GF(2) eliminations run allocation-free;
//! * **round-valid verdict cache** — a deletion can only change the verdict
//!   of nodes within `k = ⌈τ/2⌉` hops of the deleted node (distances never
//!   shrink under deletion), so the engine keeps per-node verdicts and
//!   invalidates only the `m = ⌈τ/2⌉ + 1`-hop ball of each membership
//!   change — the same locality radius DCC already uses for its m-hop MIS
//!   (`m ⊇ k`: one hop more conservative than necessary, never less);
//! * **fingerprint memo** — per node, the engine remembers verdicts keyed by
//!   a 64-bit fingerprint of the extracted punctured subgraph (sorted member
//!   ids + edge list). When a node's neighbourhood state *recurs* — across
//!   lifetime epochs, repair wake-ups, or repeated protocol rounds — the
//!   Horton elimination is skipped entirely.
//!
//! Verdicts are pure functions of the punctured subgraph, so neither cache
//! layer can change *what* the schedulers decide — only how fast. The
//! centralized, incremental and repair paths all route their deletability
//! loops through one engine instead of three ad-hoc loops.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use confine_graph::{EdgeView, Graph, GraphView, NodeId};

use crate::vpt::{neighborhood_radius, vpt_graph_ok_with, VptScratch};

/// Configuration of a [`VptEngine`].
///
/// Construct via [`EngineConfig::builder`] (or [`EngineConfig::default`]);
/// every scheduler front-end — [`crate::dcc::Dcc::builder`], the chaos and
/// churn runners, and the CLI's `--threads`/`--no-cache` flags — consumes
/// this one type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for candidate fan-out; `0` resolves to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Enables the round-valid verdict cache and the fingerprint memo.
    /// Disabled, every candidate is re-evaluated from scratch (the
    /// sequential-uncached baseline the benches compare against).
    pub cache: bool,
    /// Spatial regions for the sharded engine
    /// ([`crate::sharded::ShardedEngine`]); `0` or `1` selects the flat
    /// single-engine path.
    pub regions: usize,
    /// Worker threads *per region* in the sharded engine; `0` divides the
    /// machine's available parallelism evenly across the regions.
    pub region_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache: true,
            regions: 0,
            region_threads: 0,
        }
    }
}

impl EngineConfig {
    /// Starts a builder with the defaults (auto thread count, caching on).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Builder for [`EngineConfig`]; see [`EngineConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Worker threads for candidate fan-out; `0` (the default) resolves to
    /// the machine's available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables or disables the verdict cache and fingerprint memo
    /// (default enabled).
    pub fn cache(mut self, cache: bool) -> Self {
        self.config.cache = cache;
        self
    }

    /// Number of spatial regions for the sharded engine; `0` or `1` (the
    /// default) selects the flat single-engine path.
    pub fn regions(mut self, regions: usize) -> Self {
        self.config.regions = regions;
        self
    }

    /// Worker threads per region in the sharded engine; `0` (the default)
    /// divides the machine's available parallelism across the regions.
    pub fn region_threads(mut self, region_threads: usize) -> Self {
        self.config.region_threads = region_threads;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Counters describing what a [`VptEngine`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Full VPT evaluations actually executed (ball extraction + Horton).
    pub evaluations: usize,
    /// Queries answered by the round-valid verdict cache.
    pub round_hits: usize,
    /// Queries answered by the fingerprint memo after extraction.
    pub memo_hits: usize,
    /// Round-verdict invalidations triggered by membership changes.
    pub invalidations: usize,
}

/// One deletability query whose punctured subgraph was materialised by the
/// caller (typically a discovery protocol), ready for memoized evaluation.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// The node whose deletability is being tested.
    pub node: NodeId,
    /// Sorted member ids of the punctured neighbourhood (parent-graph ids).
    pub members: Vec<NodeId>,
    /// The punctured neighbourhood graph (indexed by position in `members`).
    pub graph: Graph,
}

/// The shared evaluation engine behind `schedule`, `incremental` and
/// `repair`.
///
/// Construct one per (τ, topology) run — or keep it alive across runs on the
/// same graph to let the fingerprint memo pay off across lifetime epochs.
///
/// # Example
///
/// ```
/// use confine_core::vpt_engine::{EngineConfig, VptEngine};
/// use confine_graph::{generators, Masked, NodeId};
///
/// let g = generators::king_grid_graph(5, 5);
/// let masked = Masked::all_active(&g);
/// let mut engine = VptEngine::new(4, EngineConfig::default());
/// engine.begin_run(g.node_count());
/// let eligible: Vec<NodeId> = g.nodes().collect();
/// let deletable = engine.deletable_candidates(&masked, &eligible);
/// assert!(deletable.contains(&NodeId(12)), "interior nodes are redundant");
/// ```
#[derive(Debug, Clone)]
pub struct VptEngine {
    tau: usize,
    k: u32,
    cache: bool,
    /// Round-valid verdicts, invalidated by k-hop balls of membership
    /// changes.
    verdicts: Vec<Option<bool>>,
    /// Per-node fingerprint → verdict memo; survives invalidation because
    /// verdicts are pure functions of the fingerprinted subgraph.
    memo: Vec<FpMemo>,
    /// One arena per worker thread — ball BFS, induced-CSR and GF(2) buffers
    /// all survive across calls, runs and epochs.
    scratches: Vec<VptScratch>,
    stats: EngineStats,
}

impl VptEngine {
    /// Creates an engine for confine size `tau`; build the configuration via
    /// [`EngineConfig::builder`] (or pass [`EngineConfig::default`]).
    pub fn new(tau: usize, config: EngineConfig) -> Self {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.threads
        };
        VptEngine {
            tau,
            k: neighborhood_radius(tau),
            cache: config.cache,
            verdicts: Vec::new(),
            memo: Vec::new(),
            scratches: (0..threads).map(|_| VptScratch::default()).collect(),
            stats: EngineStats::default(),
        }
    }

    /// The confine size `τ` the engine evaluates for.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The resolved worker thread count.
    pub fn threads(&self) -> usize {
        self.scratches.len()
    }

    /// Whether caching is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache
    }

    /// Counters accumulated since construction (or [`VptEngine::reset_stats`]).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Prepares the engine for a scheduling run over `node_bound` node slots.
    ///
    /// Clears the round-valid verdicts (the active set is about to change
    /// wholesale); keeps the fingerprint memo when the node bound is
    /// unchanged, so repeated runs on the same topology — lifetime epochs,
    /// fault sweeps — skip every recurring Horton elimination.
    pub fn begin_run(&mut self, node_bound: usize) {
        if self.verdicts.len() != node_bound {
            self.verdicts = vec![None; node_bound];
            self.memo = (0..node_bound).map(|_| FpMemo::default()).collect();
        } else {
            self.verdicts.iter_mut().for_each(|v| *v = None);
        }
    }

    /// Filters `eligible` (active internal nodes, in the caller's order) down
    /// to the VPT-deletable candidates, preserving order.
    ///
    /// Cache misses are fanned out over the engine's worker threads; results
    /// are identical to calling [`crate::vpt::is_vertex_deletable`] fresh on
    /// every node.
    pub fn deletable_candidates<V: GraphView + Sync>(
        &mut self,
        view: &V,
        eligible: &[NodeId],
    ) -> Vec<NodeId> {
        let mut verdict_of: Vec<Option<bool>> = vec![None; eligible.len()];
        let mut misses: Vec<(usize, NodeId)> = Vec::new();
        for (i, &v) in eligible.iter().enumerate() {
            match self.cache.then(|| self.verdicts[v.index()]).flatten() {
                Some(b) => {
                    self.stats.round_hits += 1;
                    verdict_of[i] = Some(b);
                }
                None => misses.push((i, v)),
            }
        }

        let (tau, k, cache) = (self.tau, self.k, self.cache);
        let memo = &self.memo;
        let outcomes = run_jobs(&misses, &mut self.scratches, |&(_, v), scratch| {
            // Ball extraction and the induced build run entirely inside the
            // worker's arena; no per-candidate allocation after warm-up.
            scratch.hood.punctured(view, v, k);
            let fp = fingerprint(scratch.hood.members(), scratch.hood.csr());
            match cache.then(|| memo[v.index()].get(&fp)).flatten() {
                Some(&b) => (fp, b, true),
                None => (fp, crate::vpt::scratch_csr_ok(scratch, tau), false),
            }
        });

        for (&(i, v), &(fp, verdict, memo_hit)) in misses.iter().zip(&outcomes) {
            if memo_hit {
                self.stats.memo_hits += 1;
            } else {
                self.stats.evaluations += 1;
            }
            if self.cache {
                self.verdicts[v.index()] = Some(verdict);
                self.memo[v.index()].insert(fp, verdict);
            }
            verdict_of[i] = Some(verdict);
        }

        #[cfg(feature = "strict-invariants")]
        {
            // Cache-coherence audit: every eighth eligible node is
            // re-evaluated from scratch on the live view; a divergence means
            // a stale round verdict or a fingerprint collision leaked a
            // wrong answer through the cache.
            for (i, &v) in eligible.iter().enumerate().step_by(8) {
                let fresh = crate::vpt::is_vertex_deletable(view, v, self.tau);
                assert_eq!(
                    verdict_of[i],
                    Some(fresh),
                    "strict-invariants: cached verdict for node {v:?} diverges from fresh evaluation"
                );
            }
        }

        eligible
            .iter()
            .zip(&verdict_of)
            // lint: panic-ok(the hit/miss split above fills a verdict for every eligible index)
            .filter(|&(_, r)| r.expect("every eligible node was resolved"))
            .map(|(&v, _)| v)
            .collect()
    }

    /// Evaluates caller-materialised punctured subgraphs through the memo,
    /// fanning misses out over the worker threads. Returns a packed verdict
    /// bitset in job order.
    ///
    /// This is the path the protocol-driven schedulers (incremental, repair,
    /// distributed) use: their discovery state already holds each node's
    /// punctured graph, so only the fingerprint memo applies.
    pub fn evaluate_jobs(&mut self, jobs: &[EvalJob]) -> VerdictBits {
        let refs: Vec<&EvalJob> = jobs.iter().collect();
        self.evaluate_job_refs(&refs)
    }

    /// [`VptEngine::evaluate_jobs`] over borrowed jobs — the entry point the
    /// sharded engine uses to regroup one job slice by region without
    /// cloning the materialised punctured graphs.
    pub(crate) fn evaluate_job_refs(&mut self, jobs: &[&EvalJob]) -> VerdictBits {
        let bound = jobs.iter().map(|j| j.node.index() + 1).max().unwrap_or(0);
        if self.memo.len() < bound {
            self.memo.resize_with(bound, FpMemo::default);
        }
        let (tau, cache) = (self.tau, self.cache);
        let memo = &self.memo;
        let outcomes = run_jobs(jobs, &mut self.scratches, |job, scratch| {
            let fp = fingerprint(&job.members, &job.graph);
            match cache.then(|| memo[job.node.index()].get(&fp)).flatten() {
                Some(&b) => (fp, b, true),
                None => (fp, vpt_graph_ok_with(&job.graph, tau, scratch), false),
            }
        });
        let mut verdicts = VerdictBits::with_capacity(jobs.len());
        for (job, &(fp, verdict, memo_hit)) in jobs.iter().zip(&outcomes) {
            if memo_hit {
                self.stats.memo_hits += 1;
            } else {
                self.stats.evaluations += 1;
            }
            if self.cache {
                self.memo[job.node.index()].insert(fp, verdict);
            }
            verdicts.push(verdict);
        }
        #[cfg(feature = "strict-invariants")]
        {
            // Memo audit: every eighth job's verdict must equal an uncached
            // evaluation of its materialised punctured graph, catching
            // fingerprint collisions and stale memo entries.
            let mut scratch = VptScratch::default();
            for (job, verdict) in jobs.iter().zip(verdicts.iter()).step_by(8) {
                assert_eq!(
                    verdict,
                    vpt_graph_ok_with(&job.graph, self.tau, &mut scratch),
                    "strict-invariants: memoized verdict for node {:?} diverges from fresh evaluation",
                    job.node
                );
            }
        }
        verdicts
    }

    /// Records that `v` is about to be deactivated on `view` (call **before**
    /// the deactivation): round verdicts of every node within `k` hops of
    /// `v` are invalidated.
    ///
    /// Radius `k` is exact, not conservative: `u`'s verdict reads only the
    /// induced subgraph on `N_k(u) \ {u}`, and every intermediate vertex of
    /// a `≤ k`-hop path from `u` lies strictly inside `u`'s `k`-ball — so a
    /// deletion at distance `k + 1` can change neither the ball membership
    /// nor its induced edges. The ball is computed on the pre-deletion view
    /// (distances only grow afterwards), hence it covers every affected
    /// node.
    pub fn note_deletion<V: GraphView>(&mut self, view: &V, v: NodeId) {
        self.invalidate_ball(view, v);
    }

    /// Records that `v` was just activated on `view` (call **after** the
    /// activation, e.g. a repair wake-up): round verdicts of the `k`-hop
    /// ball of `v` — computed on the post-wake view, so it covers exactly
    /// the nodes that can now reach `v` within `k` hops — are invalidated.
    pub fn note_wake<V: GraphView>(&mut self, view: &V, v: NodeId) {
        self.invalidate_ball(view, v);
    }

    /// Captures the engine's complete memoization state — round verdicts
    /// and the fingerprint memo — as a canonical value.
    ///
    /// Memo entries are sorted by fingerprint before exposure, so two
    /// engines holding the same logical cache state produce equal
    /// snapshots regardless of hash-map iteration order, and a snapshot's
    /// [`EngineSnapshot::digest`] is stable across processes. Restoring a
    /// snapshot ([`VptEngine::restore_snapshot`]) then sweeping yields
    /// bitwise-identical results to the uninterrupted engine: verdicts are
    /// pure functions of the fingerprinted subgraphs, so the caches only
    /// change how fast answers arrive, never what they are.
    pub fn snapshot(&self) -> EngineSnapshot {
        let memo = self
            .memo
            .iter()
            .map(|m| {
                // Sorted by fingerprint so the snapshot is canonical no
                // matter what order the memo yields its entries in.
                let mut pairs: Vec<(u64, bool)> = m.iter().map(|(&fp, &v)| (fp, v)).collect();
                pairs.sort_unstable();
                pairs
            })
            .collect();
        EngineSnapshot {
            tau: self.tau,
            cache: self.cache,
            verdicts: self.verdicts.clone(),
            memo,
        }
    }

    /// Restores the memoization state captured by [`VptEngine::snapshot`],
    /// replacing the engine's verdicts and memo wholesale (worker scratches
    /// are transient and unaffected).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TauMismatch`] when the snapshot was taken at a
    /// different confine size — its verdicts answer a different question
    /// and must not be replayed here.
    pub fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
        if snapshot.tau != self.tau {
            return Err(SnapshotError::TauMismatch {
                engine: self.tau,
                snapshot: snapshot.tau,
            });
        }
        self.cache = snapshot.cache;
        self.verdicts = snapshot.verdicts.clone();
        self.memo = snapshot
            .memo
            .iter()
            .map(|pairs| pairs.iter().copied().collect())
            .collect();
        Ok(())
    }

    fn invalidate_ball<V: GraphView>(&mut self, view: &V, v: NodeId) {
        if !self.cache {
            return;
        }
        // The ball BFS reuses worker 0's arena — invalidation runs between
        // fan-outs, when every scratch is idle.
        let ball = self.scratches[0].hood.ball_members(view, v, self.k);
        for &w in ball {
            if self.verdicts[w.index()].take().is_some() {
                self.stats.invalidations += 1;
            }
        }
        if v.index() < self.verdicts.len() && self.verdicts[v.index()].take().is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Drops the round verdicts of an explicit node set — the sharded
    /// engine's entry point, which computes one invalidation ball per
    /// membership change and hands it to exactly the region engines whose
    /// halo the ball touches. Ids beyond the engine's bound are ignored.
    pub fn invalidate_nodes(&mut self, nodes: &[NodeId]) {
        if !self.cache {
            return;
        }
        for &w in nodes {
            if w.index() < self.verdicts.len() && self.verdicts[w.index()].take().is_some() {
                self.stats.invalidations += 1;
            }
        }
    }
}

/// A canonical capture of a [`VptEngine`]'s memoization state, produced by
/// [`VptEngine::snapshot`] and replayed by [`VptEngine::restore_snapshot`].
///
/// The `confine-server` epoch journal persists these across daemon crashes:
/// because memo pairs are sorted and verdicts are pure, a restored engine is
/// observationally identical to one that never died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    tau: usize,
    cache: bool,
    verdicts: Vec<Option<bool>>,
    memo: Vec<Vec<(u64, bool)>>,
}

impl EngineSnapshot {
    /// The confine size `τ` the captured engine evaluated for.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The node bound of the captured run (0 before any `begin_run`).
    pub fn node_bound(&self) -> usize {
        self.verdicts.len()
    }

    /// Total fingerprint-memo entries across all nodes.
    pub fn memo_entries(&self) -> usize {
        self.memo.iter().map(Vec::len).sum()
    }

    /// A 64-bit FNV-1a digest of the canonical snapshot content — stable
    /// across processes and std releases, suitable for journal integrity
    /// checks.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.tau as u64);
        mix(u64::from(self.cache));
        mix(self.verdicts.len() as u64);
        for v in &self.verdicts {
            mix(match v {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        for pairs in &self.memo {
            mix(pairs.len() as u64);
            for &(fp, verdict) in pairs {
                mix(fp);
                mix(u64::from(verdict));
            }
        }
        h
    }
}

/// Rejection of an incompatible [`EngineSnapshot`] restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was captured at a different confine size.
    TauMismatch {
        /// The restoring engine's `τ`.
        engine: usize,
        /// The snapshot's `τ`.
        snapshot: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TauMismatch { engine, snapshot } => write!(
                f,
                "engine snapshot captured at tau {snapshot} cannot restore into an engine at tau {engine}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A packed verdict bitset, returned by [`VptEngine::evaluate_jobs`] in job
/// order — one bit per job instead of one byte, sized for schedules that
/// evaluate tens of thousands of candidates per round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerdictBits {
    words: Vec<u64>,
    len: usize,
}

impl VerdictBits {
    pub(crate) fn with_capacity(n: usize) -> Self {
        VerdictBits {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, verdict: bool) {
        let (w, bit) = (self.len / 64, self.len % 64);
        if bit == 0 {
            self.words.push(0);
        }
        if verdict {
            self.words[w] |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Verdict of job `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "verdict index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of verdicts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no jobs were evaluated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of positive (deletable) verdicts.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the verdicts in job order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

/// 64-bit structural fingerprint of a punctured neighbourhood: member ids
/// (sorted, parent-graph numbering) plus the induced edge list. Two equal
/// fingerprints disagree on the verdict only under a hash collision
/// (~`n²/2⁶⁴` for `n` distinct neighbourhood states per node — vanishing at
/// any realistic scale, and property-tested against fresh evaluation).
///
/// Generic over [`EdgeView`]: the CSR extraction assigns node and edge ids
/// exactly as the [`Graph`]-building path does, so both substrates hash to
/// the same key and share one memo.
fn fingerprint<G: EdgeView>(members: &[NodeId], graph: &G) -> u64 {
    let mut h = (members.len() as u64).wrapping_mul(FP_K) ^ graph.edge_count() as u64;
    for v in members {
        h = fp_mix(h, v.index() as u64);
    }
    for e in (0..graph.edge_count()).map(confine_graph::EdgeId::from) {
        let (a, b) = graph.edge_endpoints(e);
        h = fp_mix(h, ((a.index() as u64) << 32) | b.index() as u64);
    }
    h
}

/// Odd multiplier for the fingerprint mix (the 64-bit golden-ratio
/// constant, as in Fibonacci hashing).
const FP_K: u64 = 0x9E37_79B9_7F4A_7C15;

/// One multiply–xor round: deterministic, word-at-a-time, and an order of
/// magnitude cheaper than a SipHash pass over the same stream. The memo
/// tolerates the weaker mixing — a collision costs a wrong cached verdict
/// only if two *different* subgraphs for the *same* node collide, and the
/// strict-invariants audit cross-checks cached verdicts against fresh
/// evaluation.
#[inline]
fn fp_mix(h: u64, x: u64) -> u64 {
    (h.rotate_left(29) ^ x).wrapping_mul(FP_K)
}

/// Pass-through hasher for memo keys that are already 64-bit fingerprints:
/// one multiply replaces a full SipHash invocation per probe.
#[derive(Debug, Default, Clone)]
struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = fp_mix(self.0, b as u64);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(FP_K);
    }
}

/// Per-node fingerprint → verdict map keyed by the pass-through hasher.
type FpMemo = HashMap<u64, bool, BuildHasherDefault<FpHasher>>;

/// Maps `jobs` through `f`, preserving order, spreading contiguous chunks
/// over scoped worker threads — one persistent [`VptScratch`] per worker, so
/// arenas warmed by earlier calls keep paying off. With one scratch (or few
/// jobs) everything runs inline on worker 0.
pub(crate) fn run_jobs<J, O, F>(jobs: &[J], scratches: &mut [VptScratch], f: F) -> Vec<O>
where
    J: Sync,
    O: Send,
    F: Fn(&J, &mut VptScratch) -> O + Sync,
{
    let threads = scratches.len().clamp(1, jobs.len().max(1));
    if threads == 1 {
        let scratch = &mut scratches[0];
        return jobs.iter().map(|j| f(j, scratch)).collect();
    }
    let chunk = jobs.len().div_ceil(threads);
    let mut out: Vec<Option<O>> = (0..jobs.len()).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|s| {
        for ((js, os), scratch) in jobs
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .zip(scratches.iter_mut())
        {
            s.spawn(move || {
                for (j, o) in js.iter().zip(os.iter_mut()) {
                    *o = Some(f(j, scratch));
                }
            });
        }
    });
    out.into_iter()
        // lint: panic-ok(the scoped threads wrote every chunk slot before the scope joined)
        .map(|o| o.expect("every chunk was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpt::{induced_from_view, is_vertex_deletable};
    use confine_graph::{generators, traverse, Masked};

    fn fresh_candidates(masked: &Masked<'_>, eligible: &[NodeId], tau: usize) -> Vec<NodeId> {
        eligible
            .iter()
            .copied()
            .filter(|&v| is_vertex_deletable(masked, v, tau))
            .collect()
    }

    #[test]
    fn engine_matches_fresh_evaluation_across_deletions() {
        let g = generators::king_grid_graph(6, 6);
        let mut masked = Masked::all_active(&g);
        let mut engine = VptEngine::new(4, EngineConfig::default());
        engine.begin_run(g.node_count());
        // Delete a few nodes one at a time, checking the candidate set
        // against fresh evaluation at every step.
        for _ in 0..6 {
            let eligible: Vec<NodeId> = masked.active_nodes().collect();
            let got = engine.deletable_candidates(&masked, &eligible);
            let want = fresh_candidates(&masked, &eligible, 4);
            assert_eq!(got, want);
            let Some(&v) = got.first() else { break };
            engine.note_deletion(&masked, v);
            masked.deactivate(v);
        }
        let s = engine.stats();
        assert!(s.round_hits > 0, "later rounds must hit the verdict cache");
        assert!(s.invalidations > 0);
    }

    #[test]
    fn memo_pays_off_across_runs() {
        let g = generators::king_grid_graph(5, 5);
        let masked = Masked::all_active(&g);
        let eligible: Vec<NodeId> = g.nodes().collect();
        let mut engine = VptEngine::new(4, EngineConfig::default());
        engine.begin_run(g.node_count());
        let first = engine.deletable_candidates(&masked, &eligible);
        let evals_after_first = engine.stats().evaluations;
        engine.begin_run(g.node_count());
        let second = engine.deletable_candidates(&masked, &eligible);
        assert_eq!(first, second);
        assert_eq!(
            engine.stats().evaluations,
            evals_after_first,
            "second run must be answered entirely by the memo"
        );
        assert_eq!(engine.stats().memo_hits, eligible.len());
    }

    #[test]
    fn uncached_engine_still_correct() {
        let g = generators::king_grid_graph(4, 5);
        let masked = Masked::all_active(&g);
        let eligible: Vec<NodeId> = g.nodes().collect();
        let mut engine = VptEngine::new(4, EngineConfig::builder().threads(1).cache(false).build());
        engine.begin_run(g.node_count());
        let a = engine.deletable_candidates(&masked, &eligible);
        let b = engine.deletable_candidates(&masked, &eligible);
        assert_eq!(a, b);
        assert_eq!(a, fresh_candidates(&masked, &eligible, 4));
        assert_eq!(engine.stats().round_hits, 0);
        assert_eq!(engine.stats().evaluations, 2 * eligible.len());
    }

    #[test]
    fn multithreaded_fanout_matches_inline() {
        let g = generators::king_grid_graph(7, 7);
        let masked = Masked::all_active(&g);
        let eligible: Vec<NodeId> = g.nodes().collect();
        let mut inline = VptEngine::new(4, EngineConfig::builder().threads(1).build());
        let mut fanned = VptEngine::new(4, EngineConfig::builder().threads(4).build());
        inline.begin_run(g.node_count());
        fanned.begin_run(g.node_count());
        assert_eq!(
            inline.deletable_candidates(&masked, &eligible),
            fanned.deletable_candidates(&masked, &eligible),
        );
    }

    #[test]
    fn evaluate_jobs_memoizes_by_fingerprint() {
        let g = generators::wheel_graph(6);
        let jobs: Vec<EvalJob> = g
            .nodes()
            .map(|v| {
                let ball = traverse::k_hop_neighbors(&g, v, neighborhood_radius(6));
                let (graph, members) = induced_from_view(&g, &ball);
                EvalJob {
                    node: v,
                    members,
                    graph,
                }
            })
            .collect();
        let mut engine = VptEngine::new(6, EngineConfig::default());
        let first = engine.evaluate_jobs(&jobs);
        let evals = engine.stats().evaluations;
        let second = engine.evaluate_jobs(&jobs);
        assert_eq!(first, second);
        assert_eq!(engine.stats().evaluations, evals, "all memo hits");
        assert_eq!(first.len(), jobs.len());
        assert!(!first.is_empty());
        assert!(first.count_ones() <= first.len());
        // Hub deletable at τ = 6; rim nodes' punctured balls lose the rim
        // cycle closure — verdicts must match fresh evaluation regardless.
        for (job, verdict) in jobs.iter().zip(first.iter()) {
            assert_eq!(verdict, is_vertex_deletable(&g, job.node, 6));
        }
    }

    #[test]
    fn snapshot_round_trips_into_a_fresh_engine() {
        let g = generators::king_grid_graph(6, 6);
        let mut masked = Masked::all_active(&g);
        let mut engine = VptEngine::new(4, EngineConfig::default());
        engine.begin_run(g.node_count());
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        let first = engine.deletable_candidates(&masked, &eligible);
        engine.note_deletion(&masked, first[0]);
        masked.deactivate(first[0]);

        let snap = engine.snapshot();
        assert_eq!(snap.tau(), 4);
        assert_eq!(snap.node_bound(), g.node_count());
        assert!(snap.memo_entries() > 0);
        assert_eq!(snap, engine.snapshot(), "snapshot is a canonical value");
        assert_eq!(snap.digest(), engine.snapshot().digest());

        // A fresh engine restored from the snapshot answers the next sweep
        // identically to the uninterrupted engine — with zero fresh
        // evaluations beyond what the uninterrupted engine would run.
        let mut restored = VptEngine::new(4, EngineConfig::default());
        restored.restore_snapshot(&snap).unwrap();
        engine.reset_stats();
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        let a = engine.deletable_candidates(&masked, &eligible);
        let b = restored.deletable_candidates(&masked, &eligible);
        assert_eq!(a, b);
        assert_eq!(
            engine.stats().evaluations,
            restored.stats().evaluations,
            "the restored engine re-evaluates exactly what the survivor does"
        );
        assert_eq!(restored.snapshot().digest(), engine.snapshot().digest());

        let mut wrong_tau = VptEngine::new(6, EngineConfig::default());
        let err = wrong_tau.restore_snapshot(&snap).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::TauMismatch {
                engine: 6,
                snapshot: 4
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn wake_invalidation_restores_fresh_verdicts() {
        let g = generators::king_grid_graph(6, 6);
        let mut masked = Masked::all_active(&g);
        let mut engine = VptEngine::new(4, EngineConfig::default());
        engine.begin_run(g.node_count());
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        engine.deletable_candidates(&masked, &eligible);
        // Sleep then wake a node; the engine must not serve pre-wake
        // verdicts for its neighbourhood.
        let v = NodeId(14);
        engine.note_deletion(&masked, v);
        masked.deactivate(v);
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        let got = engine.deletable_candidates(&masked, &eligible);
        assert_eq!(got, fresh_candidates(&masked, &eligible, 4));
        masked.activate(v);
        engine.note_wake(&masked, v);
        let eligible: Vec<NodeId> = masked.active_nodes().collect();
        let got = engine.deletable_candidates(&masked, &eligible);
        assert_eq!(got, fresh_candidates(&masked, &eligible, 4));
    }
}
