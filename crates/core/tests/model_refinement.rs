//! Refinement check: sampled concrete chaos campaigns stay inside the
//! abstract model's observable behaviour.
//!
//! The model checker's verdicts are only as good as the abstraction — if
//! the concrete runners could produce a per-node lifecycle the model never
//! exhibits, an abstract "safe" would prove nothing. This suite samples
//! crash/recover campaigns with `ChaosRunner`, projects each concrete
//! trace onto the model's observable alphabet (`project_trace`), and
//! asserts every projected per-node sequence is accepted by the lifecycle
//! automaton pooled from exhaustive small-N explorations under the same
//! rejoin policy.

use std::sync::OnceLock;

use confine_core::chaos::{ChaosOptions, ChaosRunner};
use confine_core::repair::RejoinPolicy;
use confine_model::{explore, Instance, LifecycleAutomaton, Options, Policy, Topology};
use confine_netsim::chaos::{project_trace, ChaosPlan, SeedTriple};
use proptest::prelude::*;

/// The lifecycle reference for one policy: the union of the observable
/// per-node languages over every exhaustively explored small instance.
/// Small n suffices — the automaton is a per-node abstraction, so larger
/// rings/paths only repeat the same local transitions.
fn reference(policy: Policy) -> &'static LifecycleAutomaton {
    static REVERIFY: OnceLock<LifecycleAutomaton> = OnceLock::new();
    static TRUST: OnceLock<LifecycleAutomaton> = OnceLock::new();
    let cell = match policy {
        Policy::ReVerify => &REVERIFY,
        Policy::TrustSnapshot => &TRUST,
    };
    cell.get_or_init(|| {
        let mut merged = LifecycleAutomaton::default();
        for topo in [Topology::Path, Topology::Cycle] {
            for n in 2..=3 {
                let inst = Instance::new(topo, n, 1, policy).unwrap();
                merged.merge(&explore(&inst, Options::default()).lifecycle);
            }
        }
        merged
    })
}

/// Runs one crash/recover-only campaign and checks every projected
/// per-node lifecycle against the policy's reference automaton.
fn assert_refines(policy: Policy, rejoin: RejoinPolicy, seed: u64, events: usize) {
    let runner = ChaosRunner::new(ChaosOptions {
        rejoin,
        ..ChaosOptions::default()
    });
    let triple = SeedTriple::derived(seed, 0);
    // Learn the scheduled active set, then script faults against it — the
    // model's `Crash` precondition (awake victims) mirrors this choice.
    let baseline = runner
        .run_plan(triple, &ChaosPlan::new())
        .expect("baseline campaign");
    let plan = ChaosPlan::random(&baseline.active, &[], events, seed ^ 0x5EED);
    let report = runner.run_plan(triple, &plan).expect("campaign");

    let auto = reference(policy);
    for (node, seq) in project_trace(&report.trace) {
        assert!(
            auto.accepts(&seq),
            "concrete lifecycle escapes the model: node {node:?} did {seq:?} \
             under {rejoin:?} (seed {seed}, plan {plan:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sound policy: every sampled concrete trace projects into the
    /// model's reachable per-node behaviour.
    #[test]
    fn reverify_campaigns_project_into_the_model(seed in 0u64..10_000, events in 3usize..8) {
        assert_refines(Policy::ReVerify, RejoinPolicy::ReVerify, seed, events);
    }

    /// The buggy policy refines too — the model over-approximates *both*
    /// policies; it is the oracles, not the alphabet, that tell them apart.
    #[test]
    fn trust_snapshot_campaigns_project_into_the_model(seed in 0u64..10_000, events in 3usize..8) {
        assert_refines(Policy::TrustSnapshot, RejoinPolicy::TrustSnapshot, seed, events);
    }
}
