//! Lowers the model checker's abstract `TrustSnapshot` counterexample
//! into a concrete failing chaos repro — the bridge that turns a 6-action
//! abstract trace into a copy-pasteable `chaos --plan` command.

use confine_core::chaos::{ChaosOptions, ChaosRunner};
use confine_core::repair::RejoinPolicy;
use confine_model::{explore, Instance, Options, Policy, Topology, ViolationKind};
use confine_netsim::chaos::ChaosPlan;

#[test]
fn trust_snapshot_counterexample_lowers_to_failing_repro() {
    // 1. The model checker rediscovers the planted regression.
    let inst = Instance::new(Topology::Path, 4, 1, Policy::TrustSnapshot).unwrap();
    let report = explore(&inst, Options::default());
    let cex = report
        .violations
        .iter()
        .find(|v| matches!(v.kind, ViolationKind::CoverageHole { .. }))
        .expect("model must rediscover the TrustSnapshot regression");
    assert!(cex.trace.len() <= 6, "counterexample: {}", cex.render());

    // 2. Its environment skeleton lowers to a concrete failing script.
    let runner = ChaosRunner::new(ChaosOptions {
        rejoin: RejoinPolicy::TrustSnapshot,
        ..ChaosOptions::default()
    });
    let lowering = runner
        .concretize(&cex.env_script(), 0xC0FFEE, 4)
        .expect("simulation errors are not oracle failures")
        .expect("the abstract counterexample must refine to a concrete failure");
    assert!(lowering.report.failed());
    assert!(
        lowering.command.contains("--plan"),
        "repro must be scriptable: {}",
        lowering.command
    );
    assert!(lowering.command.contains("--rejoin trust-snapshot"));

    // 3. The printed command's script replays red verbatim.
    let script = lowering.plan.render_script().unwrap();
    let replay = runner
        .run_plan(lowering.triple, &ChaosPlan::parse_script(&script).unwrap())
        .unwrap();
    assert!(replay.failed(), "lowered repro must replay red");
    assert_eq!(replay.trace.digest(), lowering.report.trace.digest());

    // 4. The same script is harmless under the sound policy.
    let sound = ChaosRunner::new(ChaosOptions::default());
    let green = sound.run_plan(lowering.triple, &lowering.plan).unwrap();
    assert!(
        !green.failed(),
        "ReVerify must survive the script that kills TrustSnapshot"
    );
}
