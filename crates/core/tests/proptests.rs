//! Property-based validation of the void preserving transformation and the
//! scheduler against brute-force cycle-space oracles.

use proptest::prelude::*;

use confine_core::prelude::*;
use confine_core::schedule::is_vpt_fixpoint;
use confine_core::vpt::{independence_radius, is_vertex_deletable, neighborhood_radius};
use confine_cycles::brute;
use confine_cycles::Cycle;
use confine_graph::{mis, traverse, Graph, GraphView, Masked, NodeId};

fn graph_from_bits(n: usize, bits: &[bool]) -> Graph {
    let mut g = Graph::new();
    g.add_nodes(n);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            if bits.get(k).copied().unwrap_or(false) {
                g.add_edge(i.into(), j.into()).expect("unique pair");
            }
            k += 1;
        }
    }
    g
}

fn arb_graph(max_n: usize, p: f64) -> impl Strategy<Value = Graph> {
    (5..=max_n).prop_flat_map(move |n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(p), pairs)
            .prop_map(move |bits| graph_from_bits(n, &bits))
    })
}

/// Removes one vertex, returning the induced graph and the old→new mapping.
fn without_vertex(g: &Graph, v: NodeId) -> (Graph, Vec<Option<NodeId>>) {
    let keep: Vec<NodeId> = g.nodes().filter(|&w| w != v).collect();
    let sub = g.induced_subgraph(&keep).expect("nodes exist");
    let mut map = vec![None; g.node_count()];
    for (i, &parent) in sub.parent_ids().iter().enumerate() {
        map[parent.index()] = Some(NodeId::from(i));
    }
    (sub.graph, map)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine of Theorem 5: if the VPT says `v` is deletable at `τ`,
    /// then every cycle avoiding `v` that was a sum of ≤τ cycles in `G`
    /// remains a sum of ≤τ cycles in `G − v`.
    #[test]
    fn vpt_deletion_preserves_partitionability(g in arb_graph(8, 0.45), tau in 3usize..7) {
        for v in g.nodes() {
            if !is_vertex_deletable(&g, v, tau) {
                continue;
            }
            let (reduced, map) = without_vertex(&g, v);
            // Test every fundamental cycle of G − v (they span all
            // v-avoiding cycle classes).
            for c in confine_cycles::space::fundamental_cycles(&reduced) {
                // Lift the cycle back into G's edge space.
                let mut lifted = confine_cycles::gf2::BitVec::zeros(g.edge_count());
                for e in c.edge_ids() {
                    let (a, b) = reduced.endpoints(e);
                    // Translate child ids back to parent ids.
                    let pa = map.iter().position(|&m| m == Some(a)).expect("mapped");
                    let pb = map.iter().position(|&m| m == Some(b)).expect("mapped");
                    let pe = g
                        .edge_between(NodeId::from(pa), NodeId::from(pb))
                        .expect("induced edges exist in the parent");
                    lifted.set(pe.index(), true);
                }
                if brute::brute_is_tau_partitionable(&g, &lifted, tau) {
                    prop_assert!(
                        brute::brute_is_tau_partitionable(&reduced, c.edge_vec(), tau),
                        "deleting {v:?} (tau {tau}) broke a partition"
                    );
                }
            }
        }
    }

    /// m-hop-independent deletions do not interfere: each winner's punctured
    /// neighbourhood is identical whether or not the other winners have
    /// already been deleted.
    #[test]
    fn mis_parallel_deletions_are_independent(g in arb_graph(10, 0.35), tau in 3usize..6) {
        let k = neighborhood_radius(tau);
        let m = independence_radius(tau);
        let candidates: Vec<NodeId> =
            g.nodes().filter(|&v| is_vertex_deletable(&g, v, tau)).collect();
        let priorities: Vec<f64> = (0..g.node_count()).map(|i| (i * 31 % 17) as f64).collect();
        let winners = mis::m_hop_mis(&g, &candidates, &priorities, m);
        prop_assert!(mis::is_m_hop_independent(&g, &winners, m));

        for &w in &winners {
            let before: Vec<NodeId> = traverse::k_hop_neighbors(&g, w, k);
            let mut masked = Masked::all_active(&g);
            for &other in winners.iter().filter(|&&o| o != w) {
                masked.deactivate(other);
            }
            let after: Vec<NodeId> = traverse::k_hop_neighbors(&masked, w, k);
            prop_assert_eq!(
                before, after,
                "deleting other winners changed {:?}'s neighbourhood", w
            );
        }
    }

    /// Both deletion disciplines terminate at VPT fixpoints with consistent
    /// bookkeeping.
    #[test]
    fn scheduler_reaches_fixpoint(g in arb_graph(12, 0.3), tau in 3usize..6, seed in 0u64..50) {
        use rand::SeedableRng;
        let boundary = vec![false; g.node_count()];
        for order in [DeletionOrder::MisParallel, DeletionOrder::Sequential] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let set = Dcc::builder(tau)
                .order(order)
                .centralized()
                .expect("valid tau")
                .run(&g, &boundary, &mut rng)
                .expect("valid inputs");
            prop_assert_eq!(set.active_count() + set.deleted.len(), g.node_count());
            prop_assert!(is_vpt_fixpoint(&g, &set.active, &boundary, tau));
            // No node is reported twice.
            let mut seen = std::collections::HashSet::new();
            for &v in set.active.iter().chain(&set.deleted) {
                prop_assert!(seen.insert(v));
            }
        }
    }

    /// Deleting a VPT-deletable vertex never disconnects the component it
    /// lives in (the connectivity half of Definition 5 at work).
    #[test]
    fn vpt_deletion_preserves_component_count(g in arb_graph(9, 0.4), tau in 3usize..6) {
        let before = traverse::connected_components(&g).len();
        for v in g.nodes() {
            if g.degree(v) == 0 {
                continue; // deleting an isolated node removes its component
            }
            if is_vertex_deletable(&g, v, tau) {
                let (reduced, _) = without_vertex(&g, v);
                let after = traverse::connected_components(&reduced).len();
                prop_assert!(
                    after <= before,
                    "deleting {v:?} split a component ({before} → {after})"
                );
            }
        }
    }

    /// The wheel-hub law, randomised: a hub over a rim of length L is
    /// deletable exactly for τ ≥ L.
    #[test]
    fn wheel_hub_threshold_general(rim in 4usize..10, tau in 3usize..12) {
        let g = confine_graph::generators::wheel_graph(rim);
        prop_assert_eq!(is_vertex_deletable(&g, NodeId(0), tau), tau >= rim);
    }

    /// Scheduling respects protected nodes for arbitrary protection masks.
    #[test]
    fn protected_nodes_always_survive(
        g in arb_graph(10, 0.35),
        mask in proptest::collection::vec(any::<bool>(), 10),
        seed in 0u64..20,
    ) {
        use rand::SeedableRng;
        let boundary: Vec<bool> =
            (0..g.node_count()).map(|i| mask.get(i).copied().unwrap_or(false)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let set = Dcc::builder(4)
            .centralized()
            .expect("valid tau")
            .run(&g, &boundary, &mut rng)
            .expect("valid inputs");
        for (i, &b) in boundary.iter().enumerate() {
            if b {
                prop_assert!(set.active.contains(&NodeId::from(i)));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Robustness invariant (repair layer): crash any single internal active
    /// node of a scheduled king grid — heartbeat detection, k-hop wake-up
    /// and local re-VPT restore a *global* VPT fixpoint, and every boundary
    /// node stays active throughout.
    #[test]
    fn repair_restores_fixpoint_on_random_king_grids(
        w in 4usize..8,
        h in 4usize..8,
        tau in 3usize..6,
        seed in 0u64..1000,
        pick in 0usize..64,
    ) {
        use rand::SeedableRng;
        let g = confine_graph::generators::king_grid_graph(w, h);
        let boundary: Vec<bool> = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let set = Dcc::builder(tau)
            .centralized()
            .expect("valid tau")
            .run(&g, &boundary, &mut rng)
            .expect("valid inputs");
        prop_assert!(is_vpt_fixpoint(&g, &set.active, &boundary, tau));
        let victims: Vec<NodeId> =
            set.active.iter().copied().filter(|v| !boundary[v.index()]).collect();
        if !victims.is_empty() {
            let victim = victims[pick % victims.len()];
            let outcome = Dcc::builder(tau)
                .repair()
                .expect("valid tau")
                .repair(&g, &boundary, &set.active, victim, &mut rng)
                .expect("repair phases converge");
            prop_assert!(
                is_vpt_fixpoint(&g, &outcome.set.active, &boundary, tau),
                "crashing {:?} (tau {}) left a non-fixpoint", victim, tau
            );
            prop_assert!(!outcome.set.active.contains(&victim));
            for (i, &b) in boundary.iter().enumerate() {
                if b {
                    prop_assert!(outcome.set.active.contains(&NodeId::from(i)));
                }
            }
        }
    }

    /// Same invariant on random unit-disk ("Poisson") topologies with a
    /// geometric periphery band as the boundary.
    #[test]
    fn repair_restores_fixpoint_on_random_udg(
        n in 30usize..60,
        tau in 3usize..6,
        seed in 0u64..1000,
        pick in 0usize..64,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scenario =
            confine_deploy::scenario::random_udg_scenario(n, 1.0, 12.0, &mut rng);
        let set = Dcc::builder(tau)
            .centralized()
            .expect("valid tau")
            .run(&scenario.graph, &scenario.boundary, &mut rng)
            .expect("valid inputs");
        prop_assert!(is_vpt_fixpoint(&scenario.graph, &set.active, &scenario.boundary, tau));
        let victims: Vec<NodeId> = set
            .active
            .iter()
            .copied()
            .filter(|v| !scenario.boundary[v.index()])
            .collect();
        if !victims.is_empty() {
            let victim = victims[pick % victims.len()];
            let outcome = Dcc::builder(tau)
                .repair()
                .expect("valid tau")
                .repair(&scenario.graph, &scenario.boundary, &set.active, victim, &mut rng)
                .expect("repair phases converge");
            prop_assert!(
                is_vpt_fixpoint(&scenario.graph, &outcome.set.active, &scenario.boundary, tau),
                "crashing {:?} (tau {}, n {}) left a non-fixpoint", victim, tau, n
            );
            for (i, &b) in scenario.boundary.iter().enumerate() {
                if b {
                    prop_assert!(outcome.set.active.contains(&NodeId::from(i)));
                }
            }
        }
    }
}

/// Deterministic regression: the Möbius band's hub-free structure keeps all
/// nodes at τ = 3 but lets the inner circle sleep at τ = 5.
#[test]
fn moebius_inner_nodes_sleep_at_tau5() {
    use rand::SeedableRng;
    let band = confine_core::moebius::moebius_band();
    let mut boundary = vec![false; band.graph.node_count()];
    for &v in &band.outer_cycle {
        boundary[v.index()] = true;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let at3 = Dcc::builder(3)
        .centralized()
        .expect("valid tau")
        .run(&band.graph, &boundary, &mut rng)
        .expect("valid inputs");
    assert_eq!(at3.active_count(), 12);
    let at5 = Dcc::builder(5)
        .centralized()
        .expect("valid tau")
        .run(&band.graph, &boundary, &mut rng)
        .expect("valid inputs");
    assert!(at5.active_count() < 12, "larger τ lets inner nodes sleep");
    // Whatever remains, the outer boundary must still partition at τ = 5.
    let masked = Masked::from_active(&band.graph, &at5.active);
    let induced = masked.to_induced();
    let outer_children: Vec<NodeId> = band
        .outer_cycle
        .iter()
        .map(|&v| induced.from_parent(v).expect("boundary survives"))
        .collect();
    let outer = Cycle::from_vertex_cycle(&induced.graph, &outer_children).unwrap();
    assert!(confine_cycles::partition::is_tau_partitionable(
        &induced.graph,
        outer.edge_vec(),
        5
    ));
}

/// The engine's candidate list for the current view, against a fresh
/// sequential sweep of [`is_vertex_deletable`] — the seed semantics.
fn fresh_candidates(masked: &Masked<'_>, eligible: &[NodeId], tau: usize) -> Vec<NodeId> {
    eligible
        .iter()
        .copied()
        .filter(|&v| is_vertex_deletable(masked, v, tau))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Tentpole invariant: the cached, fanned-out [`VptEngine`] reports
    /// exactly the verdicts a fresh sequential sweep computes, at every step
    /// of a random deletion sequence on king grids.
    #[test]
    fn engine_matches_fresh_sweep_on_king_grids(
        w in 4usize..8,
        h in 4usize..8,
        tau in 3usize..6,
        seed in 0u64..1000,
        threads in 1usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let g = confine_graph::generators::king_grid_graph(w, h);
        let boundary: Vec<bool> = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut engine = VptEngine::new(tau, EngineConfig::builder().threads(threads).build());
        engine.begin_run(g.node_count());
        let mut masked = Masked::all_active(&g);
        loop {
            let eligible: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()])
                .collect();
            let got = engine.deletable_candidates(&masked, &eligible);
            prop_assert_eq!(&got, &fresh_candidates(&masked, &eligible, tau));
            if got.is_empty() {
                break;
            }
            // Delete one random candidate — deliberately *not* m-hop
            // independent rounds, so invalidation is stressed harder than the
            // scheduler ever stresses it.
            let v = got[rng.gen_range(0..got.len())];
            engine.note_deletion(&masked, v);
            masked.deactivate(v);
        }
    }

    /// The same invariant on random quasi-UDG deployments (missing mid-range
    /// links — the paper's non-UDG communication model).
    #[test]
    fn engine_matches_fresh_sweep_on_quasi_udg(
        n in 25usize..50,
        tau in 3usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let side = confine_deploy::deployment::square_side_for_degree(n, 1.0, 10.0);
        let region = confine_deploy::Rect::new(0.0, 0.0, side, side);
        let dep = confine_deploy::deployment::uniform(n, region, &mut rng);
        let scenario = confine_deploy::scenario::scenario_from_deployment(
            dep,
            confine_deploy::CommModel::QuasiUdg { r_in: 0.6, rc: 1.0, p_mid: 0.6 },
            &mut rng,
        );
        let g = &scenario.graph;
        let boundary = &scenario.boundary;
        let mut engine = VptEngine::new(tau, EngineConfig::default());
        engine.begin_run(g.node_count());
        let mut masked = Masked::all_active(g);
        loop {
            let eligible: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()])
                .collect();
            let got = engine.deletable_candidates(&masked, &eligible);
            prop_assert_eq!(&got, &fresh_candidates(&masked, &eligible, tau));
            if got.is_empty() {
                break;
            }
            let v = got[rng.gen_range(0..got.len())];
            engine.note_deletion(&masked, v);
            masked.deactivate(v);
        }
    }

    /// Crash-recovery invariant behind the `confine-server` epoch journal: a
    /// sweep interrupted mid-schedule, snapshotted, restored into a fresh
    /// engine and continued is bitwise-identical to the uninterrupted sweep
    /// — candidate sets, deletion sequence and final snapshot digest — on
    /// quasi-UDG deployments, in both cache modes.
    #[test]
    fn snapshot_restore_sweep_matches_uninterrupted(
        n in 25usize..45,
        tau in 3usize..6,
        seed in 0u64..1000,
        cache_bit in 0u8..2,
    ) {
        use rand::SeedableRng;
        let cache = cache_bit == 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let side = confine_deploy::deployment::square_side_for_degree(n, 1.0, 10.0);
        let region = confine_deploy::Rect::new(0.0, 0.0, side, side);
        let dep = confine_deploy::deployment::uniform(n, region, &mut rng);
        let scenario = confine_deploy::scenario::scenario_from_deployment(
            dep,
            confine_deploy::CommModel::QuasiUdg { r_in: 0.6, rc: 1.0, p_mid: 0.6 },
            &mut rng,
        );
        let g = &scenario.graph;
        let boundary = &scenario.boundary;
        let config = EngineConfig::builder().cache(cache).build();

        let mut survivor = VptEngine::new(tau, config);
        survivor.begin_run(g.node_count());
        let mut masked = Masked::all_active(g);
        // Run one deletion round, then "crash": snapshot the survivor and
        // restore into a cold engine mid-schedule.
        let eligible: Vec<NodeId> = masked
            .active_nodes()
            .filter(|&v| !boundary[v.index()])
            .collect();
        let first = survivor.deletable_candidates(&masked, &eligible);
        if let Some(&v) = first.first() {
            survivor.note_deletion(&masked, v);
            masked.deactivate(v);
        }
        let snap = survivor.snapshot();
        let mut restored = VptEngine::new(tau, config);
        restored.restore_snapshot(&snap).expect("same tau");

        // Drive both engines to the fixpoint over identical views; every
        // round's candidate set must agree exactly.
        let mut masked_r = masked.clone();
        loop {
            let eligible: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()])
                .collect();
            let a = survivor.deletable_candidates(&masked, &eligible);
            let b = restored.deletable_candidates(&masked_r, &eligible);
            prop_assert_eq!(&a, &b);
            let Some(&v) = a.first() else { break };
            survivor.note_deletion(&masked, v);
            restored.note_deletion(&masked_r, v);
            masked.deactivate(v);
            masked_r.deactivate(v);
        }
        prop_assert_eq!(survivor.snapshot().digest(), restored.snapshot().digest());
    }

    /// Regression for the repair path: after waking sleeping nodes back up
    /// (a crashed node's k-ball, exactly what [`Dcc::builder`]'s repair
    /// runner does), the engine's ⌈τ/2⌉+1-hop invalidation radius leaves no
    /// stale verdict anywhere — the next sweep matches fresh evaluation.
    #[test]
    fn wake_invalidation_radius_suffices_after_repair_wakeups(
        w in 5usize..8,
        h in 5usize..8,
        tau in 3usize..6,
        seed in 0u64..1000,
        pick in 0usize..64,
    ) {
        let g = confine_graph::generators::king_grid_graph(w, h);
        let boundary: Vec<bool> = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                x == 0 || y == 0 || x == w - 1 || y == h - 1
            })
            .collect();
        // Seeds only diversify the grid/pick dimensions here; deletions are
        // deterministic (first candidate) so failures minimise cleanly.
        let _ = seed;
        let mut engine = VptEngine::new(tau, EngineConfig::default());
        engine.begin_run(g.node_count());
        let mut masked = Masked::all_active(&g);
        // Schedule to a fixpoint through the engine.
        let mut deleted = Vec::new();
        loop {
            let eligible: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()])
                .collect();
            let candidates = engine.deletable_candidates(&masked, &eligible);
            let Some(&v) = candidates.first() else { break };
            engine.note_deletion(&masked, v);
            masked.deactivate(v);
            deleted.push(v);
        }
        // Crash an active internal node, then wake the sleepers in its
        // k-ball — the repair layer's wake-up step. Degenerate draws with
        // nothing deleted or no internal actives are vacuously fine.
        let victims: Vec<NodeId> = masked
            .active_nodes()
            .filter(|&v| !boundary[v.index()])
            .collect();
        if deleted.is_empty() || victims.is_empty() {
            return Ok(());
        }
        let crashed = victims[pick % victims.len()];
        engine.note_deletion(&masked, crashed);
        masked.deactivate(crashed);
        let k = neighborhood_radius(tau);
        let ball = traverse::k_hop_neighbors(&g, crashed, k);
        for &s in deleted.iter().filter(|s| ball.contains(s)) {
            masked.activate(s);
            engine.note_wake(&masked, s);
        }
        // Every subsequent verdict must match fresh evaluation; run the
        // re-scheduling loop to its fixpoint to cover many queries.
        loop {
            let eligible: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()])
                .collect();
            let got = engine.deletable_candidates(&masked, &eligible);
            prop_assert_eq!(&got, &fresh_candidates(&masked, &eligible, tau));
            let Some(&v) = got.first() else { break };
            engine.note_deletion(&masked, v);
            masked.deactivate(v);
        }
    }
}
