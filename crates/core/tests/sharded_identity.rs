//! Bitwise identity of the sharded engine against the flat engine.
//!
//! VPT verdicts are pure functions of the punctured view, so *any* correct
//! engine produces the same candidate sets, consumes the RNG identically
//! and converges to the same coverage set. These properties pin that down
//! for [`ShardedEngine`] on random quasi-UDG deployments: full schedules
//! through `Dcc::builder` must agree with the flat `VptEngine` — active
//! set, deletion order and round count — across region counts {1, 2, 4}
//! and both cache modes.

use confine_core::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// Random quasi-UDG scenario in a square sized for average degree ≈ 10.
fn quasi_udg(n: usize, seed: u64) -> confine_deploy::Scenario {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let side = confine_deploy::deployment::square_side_for_degree(n, 1.0, 10.0);
    let region = confine_deploy::Rect::new(0.0, 0.0, side, side);
    let dep = confine_deploy::deployment::uniform(n, region, &mut rng);
    confine_deploy::scenario::scenario_from_deployment(
        dep,
        confine_deploy::CommModel::QuasiUdg {
            r_in: 0.6,
            rc: 1.0,
            p_mid: 0.6,
        },
        &mut rng,
    )
}

fn assert_same_sweep(flat: &CoverageSet, sharded: &CoverageSet) {
    assert_eq!(flat.active, sharded.active);
    assert_eq!(flat.deleted, sharded.deleted);
    assert_eq!(flat.rounds, sharded.rounds);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full centralized schedules: sharded output is bitwise-identical to
    /// the flat engine for every region count and cache mode.
    #[test]
    fn sharded_schedule_matches_flat(
        n in 30usize..60,
        tau in 3usize..6,
        seed in 0u64..1000,
        cache_bit in 0u8..2,
    ) {
        let scenario = quasi_udg(n, seed);
        let g = &scenario.graph;
        let boundary = &scenario.boundary;
        let cache = cache_bit == 1;

        let mut builder = Dcc::builder(tau).threads(1);
        if !cache {
            builder = builder.no_cache();
        }
        let mut flat_runner = builder.centralized().expect("flat runner");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
        let flat = flat_runner.run(g, boundary, &mut rng).expect("flat run");

        for regions in [1usize, 2, 4] {
            let mut builder = Dcc::builder(tau)
                .regions(regions)
                .region_threads(1);
            if !cache {
                builder = builder.no_cache();
            }
            let mut runner = builder.centralized().expect("sharded runner");
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
            let sharded = runner.run(g, boundary, &mut rng).expect("sharded run");
            assert_same_sweep(&flat, &sharded);
        }
    }

    /// The same identity with a fixed geometric grid assignment from the
    /// deployment layer (the bench/CLI configuration) instead of the lazy
    /// BFS stripes.
    #[test]
    fn grid_assignment_schedule_matches_flat(
        n in 30usize..60,
        tau in 3usize..6,
        seed in 0u64..1000,
    ) {
        let scenario = quasi_udg(n, seed);
        let g = &scenario.graph;
        let boundary = &scenario.boundary;

        let mut flat_runner = Dcc::builder(tau).threads(1).centralized().expect("flat runner");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37);
        let flat = flat_runner.run(g, boundary, &mut rng).expect("flat run");

        for regions in [2usize, 4] {
            let assignment = scenario.grid_regions(regions);
            let mut runner = Dcc::builder(tau)
                .region_assignment(assignment)
                .region_threads(1)
                .centralized()
                .expect("sharded runner");
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37);
            let sharded = runner.run(g, boundary, &mut rng).expect("sharded run");
            assert_same_sweep(&flat, &sharded);
        }
    }

    /// Incremental-delta routing: deltas (a crash far from a region border,
    /// then one near it) are invalidated only in the regions whose cached
    /// verdicts they can touch, and repair still lands on the flat engine's
    /// fixpoint exactly.
    #[test]
    fn sharded_repair_matches_flat(
        n in 30usize..55,
        seed in 0u64..500,
    ) {
        let tau = 4;
        let scenario = quasi_udg(n, seed);
        let g = &scenario.graph;
        let boundary = &scenario.boundary;

        // A common starting schedule (identical either way, by purity).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xfa11);
        let set = Dcc::builder(tau)
            .centralized()
            .expect("scheduler")
            .run(g, boundary, &mut rng)
            .expect("schedule");

        // Crash the first active internal node and repair in both worlds.
        let crashed = set
            .active
            .iter()
            .copied()
            .find(|v| !boundary[v.index()]);
        let Some(crashed) = crashed else {
            // Degenerate deployment with no internal active node; vacuous.
            return Ok(());
        };

        let mut flat_runner = Dcc::builder(tau).threads(1).repair().expect("flat repair");
        let mut sharded_runner = Dcc::builder(tau)
            .regions(3)
            .region_threads(1)
            .repair()
            .expect("sharded repair");
        let mut rng_f = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut rng_s = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
        let flat_out = flat_runner
            .repair(g, boundary, &set.active, crashed, &mut rng_f)
            .expect("flat repair run");
        let sharded_out = sharded_runner
            .repair(g, boundary, &set.active, crashed, &mut rng_s)
            .expect("sharded repair run");
        assert_same_sweep(&flat_out.set, &sharded_out.set);
        prop_assert_eq!(flat_out.woken, sharded_out.woken);
    }
}
