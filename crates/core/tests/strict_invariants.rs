//! Property tests that only run with `--features strict-invariants`.
//!
//! The feature arms runtime audits inside the hot paths — GF(2) rank
//! preservation in `Decomposer::from_basis`, partition soundness in
//! `PartitionTester`, and sampled cache-coherence re-checks in `VptEngine` —
//! so these tests simply drive the schedulers and testers across random
//! quasi-UDG deployments and let every audit fire on every query. A cache
//! bug, fingerprint collision or elimination rank loss panics here even if
//! the externally visible result happens to look plausible.
#![cfg(feature = "strict-invariants")]

use proptest::prelude::*;

use confine_core::prelude::*;
use confine_core::schedule::is_vpt_fixpoint;
use confine_graph::{GraphView, Masked, NodeId};

fn quasi_udg(n: usize, rng: &mut impl rand::Rng) -> confine_deploy::scenario::Scenario {
    let side = confine_deploy::deployment::square_side_for_degree(n, 1.0, 10.0);
    let region = confine_deploy::Rect::new(0.0, 0.0, side, side);
    let dep = confine_deploy::deployment::uniform(n, region, rng);
    confine_deploy::scenario::scenario_from_deployment(
        dep,
        confine_deploy::CommModel::QuasiUdg {
            r_in: 0.6,
            rc: 1.0,
            p_mid: 0.6,
        },
        rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full engine-driven schedule on random quasi-UDGs, then partition
    /// certification of the survivors: every `deletable_candidates` sweep
    /// runs the sampled fresh-evaluation audit, and every decomposition runs
    /// the rank and partition-sum audits.
    #[test]
    fn audits_hold_across_quasi_udg_schedules(
        n in 25usize..45,
        tau in 3usize..6,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scenario = quasi_udg(n, &mut rng);
        let g = &scenario.graph;
        let boundary = &scenario.boundary;

        let mut engine = VptEngine::new(tau, EngineConfig::default());
        engine.begin_run(g.node_count());
        let mut masked = Masked::all_active(g);
        loop {
            let eligible: Vec<NodeId> = masked
                .active_nodes()
                .filter(|&v| !boundary[v.index()])
                .collect();
            let candidates = engine.deletable_candidates(&masked, &eligible);
            let Some(&v) = candidates.first() else { break };
            engine.note_deletion(&masked, v);
            masked.deactivate(v);
        }

        let induced = masked.to_induced();
        if induced.graph.edge_count() == 0 {
            return Ok(());
        }
        let tester = confine_cycles::partition::PartitionTester::new(&induced.graph);
        for c in confine_cycles::space::fundamental_cycles(&induced.graph) {
            prop_assert!(
                tester.min_partition_tau(c.edge_vec()).is_some(),
                "cycle-space member must decompose over the MCB"
            );
            prop_assert!(tester.partition(c.edge_vec()).is_some());
        }
    }

    /// The audits are observers, not participants: with them armed, the
    /// builder pipeline still terminates at a VPT fixpoint on quasi-UDGs.
    #[test]
    fn audits_do_not_change_scheduler_outcomes(
        n in 25usize..45,
        tau in 3usize..6,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scenario = quasi_udg(n, &mut rng);
        let set = Dcc::builder(tau)
            .centralized()
            .expect("valid tau")
            .run(&scenario.graph, &scenario.boundary, &mut rng)
            .expect("valid inputs");
        prop_assert!(is_vpt_fixpoint(
            &scenario.graph,
            &set.active,
            &scenario.boundary,
            tau
        ));
    }
}
