//! Acceptance tests of the streaming-churn harness (ISSUE 6):
//! bitwise-identical replay of a churn campaign across engine thread
//! counts and cache modes, and the ddmin shrinker reducing a planted
//! churn regression — `RejoinPolicy::TrustSnapshot` under move/degrade
//! churn — to a 1-minimal fault script whose repro command round-trips.
//!
//! Seed discipline: these tests never pin "seed X fails" expectations.
//! Wherever a particular deployment shape is needed, a small derived-seed
//! range is scanned and the first suitable triple is used, so the tests
//! hold under any upstream RNG stream.

use std::str::FromStr;

use confine_core::prelude::*;
use confine_netsim::chaos::{shrink_plan, ChaosEvent, ChaosPlan, SeedTriple};

fn churn_opts() -> ChurnOptions {
    ChurnOptions {
        rounds: 6,
        ..ChurnOptions::default()
    }
}

// Full-size default deployment: the 40-node quick options used by the
// scripted-chaos tests are boundary-dominated, leaving too few internal
// actives to plant a churn regression around.
fn chaos_opts() -> ChaosOptions {
    ChaosOptions {
        events: 8,
        churn: true,
        ..ChaosOptions::default()
    }
}

/// Acceptance: a churn campaign — mobility, duty-cycling and degradation
/// feeding per-round deltas into the streaming reconcile pass — replays
/// bitwise-identically whether the VPT engine runs single-threaded or
/// 4-way parallel, cached or uncached.
#[test]
fn churn_replay_is_identical_across_thread_counts_and_cache_modes() {
    let triple = SeedTriple::derived(0xC0FFEE, 3);
    let serial = ChurnRunner::new(churn_opts()).run(triple).expect("serial");
    let parallel = ChurnRunner::new(ChurnOptions {
        engine: EngineConfig::builder().threads(4).build(),
        ..churn_opts()
    })
    .run(triple)
    .expect("parallel");
    let uncached = ChurnRunner::new(ChurnOptions {
        engine: EngineConfig::builder().threads(4).cache(false).build(),
        ..churn_opts()
    })
    .run(triple)
    .expect("uncached");

    assert_eq!(
        serial.trace, parallel.trace,
        "churn trace must not depend on engine threads"
    );
    assert_eq!(serial.trace.digest(), parallel.trace.digest());
    assert_eq!(serial.active, parallel.active);
    assert_eq!(serial.stats, parallel.stats);
    assert_eq!(serial.metrics, parallel.metrics);

    assert_eq!(
        serial.trace, uncached.trace,
        "churn trace must not depend on the verdict cache"
    );
    assert_eq!(serial.trace.digest(), uncached.trace.digest());
    assert_eq!(serial.active, uncached.active);
    assert_eq!(serial.metrics, uncached.metrics);
}

/// The scripted flavour of the same guarantee: `chaos --churn` campaigns
/// (random plans drawing Move/Degrade alongside crash faults) replay
/// identically across engine configurations.
#[test]
fn scripted_churn_chaos_replays_across_engines() {
    let triple = SeedTriple::derived(0xCAB1E, 1);
    let serial = ChaosRunner::new(chaos_opts()).run(triple).expect("serial");
    let parallel = ChaosRunner::new(ChaosOptions {
        engine: EngineConfig::builder().threads(4).cache(false).build(),
        ..chaos_opts()
    })
    .run(triple)
    .expect("parallel uncached");
    assert_eq!(serial.trace, parallel.trace);
    assert_eq!(serial.trace.digest(), parallel.trace.digest());
    assert_eq!(serial.active, parallel.active);
    assert_eq!(serial.plan, parallel.plan, "derived plans must agree too");
}

/// A fault script that plants the TrustSnapshot regression around churn:
/// crash two internal active nodes (the second crash's repair is what the
/// first node's pre-crash snapshot cannot know about), mutate the topology
/// under them (a move and a radio degradation), then recover the first so
/// its stale snapshot is re-imposed on a graph it no longer describes.
fn planted_script(runner: &ChaosRunner, triple: SeedTriple) -> Option<ChaosPlan> {
    let clean = runner.run_plan(triple, &ChaosPlan::new()).ok()?;
    let scenario = runner.scenario(triple);
    let internal: Vec<_> = clean
        .active
        .iter()
        .copied()
        .filter(|v| !scenario.boundary[v.index()])
        .collect();
    if internal.len() < 4 {
        return None;
    }
    let crashed = internal[0];
    let mover = internal[internal.len() / 2];
    let degraded = internal[internal.len() - 1];
    Some(ChaosPlan {
        events: vec![
            ChaosEvent::Crash { node: crashed },
            ChaosEvent::Crash { node: internal[1] },
            ChaosEvent::Move {
                node: mover,
                dx_mils: 850,
                dy_mils: -850,
            },
            ChaosEvent::Degrade {
                node: degraded,
                factor_pct: 40,
            },
            ChaosEvent::Move {
                node: degraded,
                dx_mils: -700,
                dy_mils: 700,
            },
            ChaosEvent::Recover { node: crashed },
        ],
    })
}

/// Acceptance: `shrink_plan` on a planted churn regression yields a
/// 1-minimal script (closed under deletion of Move/Degrade events) whose
/// repro command round-trips, and the sound rejoin policy survives the
/// same script.
#[test]
fn shrink_plan_reduces_planted_churn_regression_to_one_minimal_script() {
    let buggy = ChaosRunner::new(ChaosOptions {
        rejoin: RejoinPolicy::TrustSnapshot,
        ..chaos_opts()
    });
    let fails = |plan: &ChaosPlan, triple: SeedTriple| {
        buggy
            .run_plan(triple, plan)
            .map(|r| r.failed())
            .unwrap_or(false)
    };

    // Scan for a deployment where the planted script actually tears
    // coverage: whether a given topology does depends on which substitutes
    // the crash wakes, so this is a property of the deployment shape, not
    // of any one seed.
    let (triple, planted) = (0..64)
        .filter_map(|i| {
            let t = SeedTriple::derived(0x7E57, i);
            let plan = planted_script(&buggy, t)?;
            fails(&plan, t).then_some((t, plan))
        })
        .next()
        .expect("a triple where the planted churn script trips an oracle, within 64 seeds");

    let mut oracle = |candidate: &ChaosPlan| fails(candidate, triple);
    let result = shrink_plan(&planted, &mut oracle);
    assert!(result.tests_run > 0);
    assert!(!result.plan.events.is_empty());
    assert!(result.plan.len() <= planted.len());

    // The minimal script still fails, and is an (ordered) subsequence of
    // the planted one: ddmin only ever deletes events, so the shrinker is
    // closed under deletion even across Move/Degrade events.
    assert!(
        fails(&result.plan, triple),
        "the minimal plan must still fail:\n{}",
        result.plan.describe()
    );
    let mut tail = planted.events.as_slice();
    for event in &result.plan.events {
        let at = tail
            .iter()
            .position(|e| e == event)
            .unwrap_or_else(|| panic!("{event:?} is not a subsequence of the planted script"));
        tail = &tail[at + 1..];
    }

    // 1-minimality: deleting any single event makes the script pass.
    for skip in 0..result.plan.len() {
        let mut events = result.plan.events.clone();
        events.remove(skip);
        let sub = ChaosPlan { events };
        assert!(
            !fails(&sub, triple),
            "dropping event {skip} must defuse a 1-minimal script:\n{}",
            sub.describe()
        );
    }

    // The repro command round-trips: it names the chaos entry point and a
    // triple string that parses back (strictly) to the same triple.
    let repro = triple.repro_command();
    assert!(repro.contains("chaos --one"), "repro: {repro}");
    assert!(repro.contains(&triple.to_string()));
    assert_eq!(SeedTriple::from_str(&triple.to_string()).unwrap(), triple);

    // The regression is in the rejoin policy, not in churn itself: the
    // sound policy survives the very same script on the same deployment.
    let sound = ChaosRunner::new(chaos_opts())
        .run_plan(triple, &result.plan)
        .expect("sound replay");
    assert!(
        !sound.failed(),
        "ReVerify must survive the minimal churn script:\n{}",
        sound.trace.render()
    );
}

/// The runner-level shrinker packages churn campaigns with full repro
/// flags: a failing `--churn` campaign under the planted rejoin bug
/// shrinks to a script whose printed repro carries the campaign options.
#[test]
fn runner_shrink_carries_churn_repro_flags() {
    let buggy = ChaosRunner::new(ChaosOptions {
        rejoin: RejoinPolicy::TrustSnapshot,
        ..chaos_opts()
    });
    // Random churn plans interleave moves and degradations between crash /
    // recover pairs, so a modest scan finds a failing campaign under any
    // RNG; if a stream is unusually kind, the test degrades to a no-op
    // rather than pinning a seed.
    let Some(triple) = (0..32)
        .map(|i| SeedTriple::derived(0xBAD5EED, i))
        .find(|&t| buggy.run(t).map(|r| r.failed()).unwrap_or(false))
    else {
        eprintln!("no failing churn campaign in 32 seeds under this RNG; skipping");
        return;
    };

    let cex = buggy
        .shrink(triple)
        .expect("shrink runs")
        .expect("failing campaign must yield a counterexample");
    assert!(cex.report.failed(), "the packaged minimal replay fails");
    assert!(
        cex.repro.contains("chaos --one"),
        "repro must name the CLI entry point: {}",
        cex.repro
    );
    assert!(
        cex.repro.contains("--churn"),
        "repro must carry the churn flag: {}",
        cex.repro
    );
    assert!(
        cex.repro.contains("--rejoin trust-snapshot"),
        "repro must carry the planted policy: {}",
        cex.repro
    );
    assert!(cex.repro.contains(&triple.to_string()));

    // Round-trip: replaying the packaged minimal script reproduces the
    // violation bitwise.
    let replay = buggy
        .run_plan(triple, &cex.result.plan)
        .expect("replay of the minimal script");
    assert!(replay.failed());
    assert_eq!(replay.trace.digest(), cex.report.trace.digest());
}

/// Duty-cycle membership changes are announced, never suspected, and the
/// suspicion accounting reaches the campaign stats — all under a quasi-UDG
/// radio so degraded links exercise the false-suspicion path.
#[test]
fn suspicion_accounting_flows_into_campaign_stats() {
    let runner = ChurnRunner::new(ChurnOptions {
        quasi: true,
        speed: 0.1,
        ..churn_opts()
    });
    for i in 0..2 {
        let triple = SeedTriple::derived(0x5059, i);
        let report = runner.run(triple).expect("campaign");
        assert_eq!(
            report.stats.false_suspicions, report.metrics.false_suspicions,
            "campaign stats and metrics must agree on suspicions"
        );
        // Whether a silent link loss occurs is topology dependent, so the
        // count itself is not asserted — only that the per-round rate is
        // derived from it consistently.
        let expected_rate = report.metrics.false_suspicions as f64 / report.metrics.rounds as f64;
        assert!((report.metrics.suspicion_rate - expected_rate).abs() < 1e-9);
    }
}
