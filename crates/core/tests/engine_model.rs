//! Exhaustive interleaving model of the `VptEngine` round-valid cache
//! protocol (loom-style, but dependency-free: the state space is small
//! enough to enumerate completely).
//!
//! The engine's documented contract has two load-bearing parts:
//!
//! 1. **Ordering** — `note_deletion(view, v)` must run *before*
//!    `view.deactivate(v)`, because the invalidation ball is computed by
//!    traversal on the view: on the post-deletion view the traversal starts
//!    from an inactive node and finds (almost) nothing, leaving stale
//!    verdicts in exactly the neighbourhood whose answers just changed.
//! 2. **Exclusivity** — the invalidate+deactivate pair is atomic with
//!    respect to queries (`note_deletion` takes `&mut self`). A reader
//!    sneaking in between the two steps would recompute a verdict on the
//!    *old* view and re-cache it, resurrecting the staleness the
//!    invalidation just removed.
//!
//! The model below replays every interleaving of a writer (performing one
//! deletion) and concurrent readers (querying through the cache) against a
//! miniature cache with the same semantics, and checks the cache-coherence
//! invariant at every read: *a served verdict equals fresh evaluation on the
//! current view*. The positive test shows the engine's protocol admits no
//! violating schedule; the two negative tests show that dropping either
//! contract part admits one — i.e. both parts are necessary, not stylistic.

use std::collections::VecDeque;

/// Path topology 0 – 1 – 2 – 3 – 4; the writer deletes node 2.
const N: usize = 5;
const VICTIM: usize = 2;

fn neighbors(w: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if w > 0 {
        out.push(w - 1);
    }
    if w + 1 < N {
        out.push(w + 1);
    }
    out
}

/// The model's stand-in for the VPT verdict: a pure function of the node and
/// the *current* active view (here: "has at least two active neighbours").
/// Deleting node 2 flips the verdicts of nodes 1 and 3 — the nodes the
/// invalidation ball must cover.
fn fresh(w: usize, active: &[bool; N]) -> bool {
    neighbors(w).iter().filter(|&&u| active[u]).count() >= 2
}

/// The engine's invalidation ball: traversal from `v` on the current view
/// (active nodes only), matching `traverse::k_hop_neighbors` semantics — an
/// inactive start node reaches nothing.
fn ball(v: usize, active: &[bool; N]) -> Vec<usize> {
    if !active[v] {
        return vec![v];
    }
    let mut out: Vec<usize> = neighbors(v).into_iter().filter(|&u| active[u]).collect();
    out.push(v);
    out
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Step {
    /// Clear cached verdicts for the ball of the victim, computed by
    /// traversal on the view *at execution time* (this is the crux: the same
    /// step behaves differently before and after the deactivation).
    Invalidate,
    /// Flip the victim inactive.
    Deactivate,
    /// Invalidate + Deactivate as one indivisible step (what `&mut self`
    /// grants the real engine).
    AtomicDelete,
    /// Deactivate + Invalidate as one indivisible step — the wrong ordering,
    /// still atomic.
    AtomicDeleteWrongOrder,
    /// Reader: serve the cached verdict for the node if present, else
    /// compute fresh on the current view and cache it.
    Query(usize),
}

#[derive(Clone)]
struct Model {
    active: [bool; N],
    cache: [Option<bool>; N],
}

impl Model {
    /// Cache pre-warmed by a full sweep, all nodes active — the state after
    /// a round of `deletable_candidates`.
    fn warmed() -> Self {
        let active = [true; N];
        let mut cache = [None; N];
        for (w, slot) in cache.iter_mut().enumerate() {
            *slot = Some(fresh(w, &active));
        }
        Model { active, cache }
    }

    fn invalidate(&mut self) {
        for w in ball(VICTIM, &self.active) {
            self.cache[w] = None;
        }
    }

    /// Applies one step; returns a violation description if a reader was
    /// served a verdict that disagrees with fresh evaluation on the current
    /// view.
    fn apply(&mut self, step: Step) -> Option<String> {
        match step {
            Step::Invalidate => self.invalidate(),
            Step::Deactivate => self.active[VICTIM] = false,
            Step::AtomicDelete => {
                self.invalidate();
                self.active[VICTIM] = false;
            }
            Step::AtomicDeleteWrongOrder => {
                self.active[VICTIM] = false;
                self.invalidate();
            }
            Step::Query(w) => {
                if !self.active[w] {
                    return None;
                }
                let want = fresh(w, &self.active);
                match self.cache[w] {
                    Some(got) if got != want => {
                        return Some(format!(
                            "node {w}: cache served {got}, fresh view says {want}"
                        ));
                    }
                    Some(_) => {}
                    None => self.cache[w] = Some(want),
                }
            }
        }
        None
    }
}

/// Depth-first enumeration of every interleaving of the given threads'
/// step sequences, collecting all invariant violations (deduplicated by
/// message, which is enough for the assertions below).
fn explore(state: &Model, threads: &[VecDeque<Step>], violations: &mut Vec<String>) {
    let mut advanced = false;
    for t in 0..threads.len() {
        if threads[t].is_empty() {
            continue;
        }
        advanced = true;
        let mut next_threads = threads.to_vec();
        let step = next_threads[t].pop_front().expect("checked non-empty");
        let mut next_state = state.clone();
        if let Some(v) = next_state.apply(step) {
            if !violations.contains(&v) {
                violations.push(v);
            }
            // A violated schedule is already a counterexample; no need to
            // extend it further.
            continue;
        }
        explore(&next_state, &next_threads, violations);
    }
    let _ = advanced; // all-empty: one complete schedule finished cleanly
}

/// Two reader threads sweeping the victim's neighbourhood — the nodes whose
/// verdicts the deletion changes — plus a far node as a control.
fn reader_threads() -> Vec<VecDeque<Step>> {
    vec![
        VecDeque::from([Step::Query(1), Step::Query(3), Step::Query(0)]),
        VecDeque::from([Step::Query(3), Step::Query(1), Step::Query(4)]),
    ]
}

fn run(writer: &[Step]) -> Vec<String> {
    let mut threads = reader_threads();
    threads.push(VecDeque::from(writer.to_vec()));
    let mut violations = Vec::new();
    explore(&Model::warmed(), &threads, &mut violations);
    violations
}

/// The engine's actual protocol: invalidate-then-deactivate, atomic under
/// `&mut self`. No interleaving of concurrent readers can observe a stale
/// verdict.
#[test]
fn engine_protocol_is_coherent_under_all_interleavings() {
    let violations = run(&[Step::AtomicDelete]);
    assert!(
        violations.is_empty(),
        "note_deletion-before-deactivate admitted stale reads: {violations:?}"
    );
}

/// Negative model 1: the same atomic pair with the order flipped. The
/// invalidation ball is computed on the post-deletion view, where traversal
/// from the now-inactive victim reaches nothing — nodes 1 and 3 keep their
/// pre-deletion verdicts and some schedule serves them stale.
#[test]
fn deactivate_before_invalidate_admits_stale_reads() {
    let violations = run(&[Step::AtomicDeleteWrongOrder]);
    assert!(
        !violations.is_empty(),
        "flipped ordering should leave the victim's neighbourhood stale"
    );
}

/// Negative model 2: correct ordering but non-atomic — a reader scheduled
/// between Invalidate and Deactivate recomputes on the old view and
/// re-caches the stale verdict. This is why `note_deletion` takes
/// `&mut self`: a hypothetical shared-cache engine would need a lock
/// spanning both steps, not per-step atomicity.
#[test]
fn non_atomic_writer_races_readers() {
    let violations = run(&[Step::Invalidate, Step::Deactivate]);
    assert!(
        !violations.is_empty(),
        "a reader between invalidate and deactivate should re-cache a stale verdict"
    );
}
