//! End-to-end fault-tolerance tests: the distributed scheduler under heavy
//! loss and mid-run crashes, and the repair layer's recovery guarantees
//! (VPT fixpoint + the τ-partition coverage criterion of Proposition 2).

use rand::SeedableRng;

use confine_core::prelude::*;
use confine_core::schedule::is_vpt_fixpoint;
use confine_core::verify::{verify_criterion, CriterionOutcome};
use confine_deploy::deployment::Deployment;
use confine_deploy::scenario::scenario_from_deployment;
use confine_deploy::{CommModel, Point, Rect};
use confine_graph::{generators, NodeId};
use confine_netsim::faults::FaultPlan;
use confine_netsim::LinkModel;

fn king_grid_boundary(w: usize, h: usize) -> Vec<bool> {
    (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            x == 0 || y == 0 || x == w - 1 || y == h - 1
        })
        .collect()
}

/// A deterministic dense scenario: a `w × h` unit lattice with `rc = 1.5`,
/// so the connectivity graph is exactly the king grid.
fn grid_scenario(w: usize, h: usize) -> confine_deploy::Scenario {
    let positions: Vec<Point> = (0..w * h)
        .map(|i| Point::new((i % w) as f64, (i / w) as f64))
        .collect();
    let region = Rect::new(0.0, 0.0, (w - 1) as f64, (h - 1) as f64);
    let dep = Deployment { positions, region };
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    scenario_from_deployment(dep, CommModel::Udg { rc: 1.5 }, &mut rng)
}

/// Regression (issue satellite): a 50 % lossy link model must never hang the
/// distributed scheduler — every run ends in `Ok` or a typed stall error.
#[test]
fn half_lossy_runs_terminate_cleanly() {
    let g = generators::king_grid_graph(6, 6);
    let boundary = king_grid_boundary(6, 6);
    for seed in 0..6u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let result = Dcc::builder(4)
            .link_model(LinkModel::Lossy {
                p: 0.5,
                seed: seed.wrapping_mul(97),
            })
            .round_limit(20_000)
            .distributed()
            .expect("valid tau")
            .run(&g, &boundary, &mut rng);
        match result {
            Ok((set, stats)) => {
                assert!(stats.dropped > 0, "p = 0.5 must actually drop messages");
                assert!(set.active_count() > 0, "boundary nodes always stay active");
            }
            Err(SimError::ElectionStalled { .. }) => {}
            Err(e) => panic!("seed {seed}: unexpected failure mode: {e}"),
        }
    }
}

/// Acceptance: 7×7 king grid under `Lossy { p: 0.3 }` plus up to three
/// random mid-run crashes terminates without panicking, for several plans.
#[test]
fn lossy_run_with_random_crashes_terminates() {
    let g = generators::king_grid_graph(7, 7);
    let boundary = king_grid_boundary(7, 7);
    let nodes: Vec<NodeId> = g.nodes().collect();
    for seed in 0..5u64 {
        let plan = FaultPlan::random_crashes(&nodes, 3, 40, 1000 + seed).with_seed(7 * seed + 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let result = Dcc::builder(4)
            .link_model(LinkModel::Lossy {
                p: 0.3,
                seed: 13 * seed + 5,
            })
            .fault_plan(plan)
            .round_limit(20_000)
            .distributed()
            .expect("valid tau")
            .run(&g, &boundary, &mut rng);
        match result {
            Ok((set, stats)) => {
                assert!(stats.crashed <= 3, "plan only schedules three crashes");
                assert!(stats.dropped > 0);
                // Crashed nodes leave the topology: never in the final set.
                assert!(set.active.len() + set.deleted.len() + stats.crashed <= 49);
            }
            Err(SimError::ElectionStalled { .. }) => {}
            Err(e) => panic!("seed {seed}: unexpected failure mode: {e}"),
        }
    }
}

/// Acceptance: crashing an internal active node *after* the schedule is
/// computed, then running the repair layer, restores a global VPT fixpoint
/// and reports the repair traffic in the stats.
#[test]
fn post_schedule_crash_is_repaired_with_accounted_traffic() {
    let g = generators::king_grid_graph(7, 7);
    let boundary = king_grid_boundary(7, 7);
    let tau = 4;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let (set, _) = Dcc::builder(tau)
        .distributed()
        .expect("valid tau")
        .run(&g, &boundary, &mut rng)
        .expect("reliable run succeeds");
    assert!(is_vpt_fixpoint(&g, &set.active, &boundary, tau));

    let victim = *set
        .active
        .iter()
        .find(|v| !boundary[v.index()])
        .expect("7×7 at τ=4 keeps interior nodes active");
    let outcome = Dcc::builder(tau)
        .repair()
        .expect("valid tau")
        .repair(&g, &boundary, &set.active, victim, &mut rng)
        .expect("repair converges");

    assert!(is_vpt_fixpoint(&g, &outcome.set.active, &boundary, tau));
    assert!(!outcome.set.active.contains(&victim));
    assert!(
        outcome.stats.repair_messages > 0,
        "repair traffic must be visible in DistributedStats"
    );
    assert_eq!(outcome.stats.crashed, 1);
    assert!(outcome.degradation.detection_rounds > 0);
}

/// Acceptance: the repaired active set still satisfies the τ-partition
/// coverage criterion (Proposition 2) on a dense geometric scenario.
#[test]
fn repaired_set_keeps_tau_partition_criterion() {
    let scenario = grid_scenario(8, 8);
    let tau = 4;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let (set, _) = Dcc::builder(tau)
        .distributed()
        .expect("valid tau")
        .run(&scenario.graph, &scenario.boundary, &mut rng)
        .expect("reliable run succeeds");
    let before = verify_criterion(&scenario, &set.active, tau);
    assert_eq!(
        before,
        CriterionOutcome::Satisfied,
        "pre-crash schedule certifies"
    );

    let victim = *set
        .active
        .iter()
        .find(|v| !scenario.boundary[v.index()])
        .expect("dense grid keeps interior nodes active");
    let outcome = Dcc::builder(tau)
        .repair()
        .expect("valid tau")
        .repair(
            &scenario.graph,
            &scenario.boundary,
            &set.active,
            victim,
            &mut rng,
        )
        .expect("repair converges");

    assert!(is_vpt_fixpoint(
        &scenario.graph,
        &outcome.set.active,
        &scenario.boundary,
        tau
    ));
    let after = verify_criterion(&scenario, &outcome.set.active, tau);
    assert_eq!(
        after,
        CriterionOutcome::Satisfied,
        "repair restores certified coverage"
    );
}
