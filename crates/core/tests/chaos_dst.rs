//! Acceptance tests of the deterministic chaos harness (ISSUE 4):
//! bitwise-identical replay from a seed triple across engine thread
//! counts, and the ddmin shrinker catching a deliberately planted
//! rejoin regression and reducing it to a minimal fault script.

use std::collections::BTreeSet;

use confine_core::prelude::*;
use confine_graph::traverse;
use confine_netsim::chaos::{ChaosEvent, ChaosPlan, SeedTriple, TraceEvent};

fn opts() -> ChaosOptions {
    ChaosOptions {
        nodes: 40,
        degree: 9.0,
        events: 8,
        ..ChaosOptions::default()
    }
}

/// Acceptance: the same (topology, faults, schedule) triple produces a
/// bitwise-identical trace and final active set whether the VPT engine
/// runs single-threaded or parallel, cached or not — the replay guarantee
/// the whole DST layer rests on.
#[test]
fn replay_is_identical_across_thread_counts_and_cache_modes() {
    let triple = SeedTriple::derived(0xD57, 2);
    let serial = ChaosRunner::new(ChaosOptions {
        engine: EngineConfig::builder().threads(1).build(),
        ..opts()
    })
    .run(triple)
    .expect("serial run");
    let parallel = ChaosRunner::new(ChaosOptions {
        engine: EngineConfig::builder().threads(4).build(),
        ..opts()
    })
    .run(triple)
    .expect("parallel run");
    let uncached = ChaosRunner::new(ChaosOptions {
        engine: EngineConfig::builder().threads(4).cache(false).build(),
        ..opts()
    })
    .run(triple)
    .expect("uncached run");

    assert_eq!(
        serial.trace, parallel.trace,
        "trace must not depend on threads"
    );
    assert_eq!(serial.trace.digest(), parallel.trace.digest());
    assert_eq!(serial.active, parallel.active);
    assert_eq!(serial.trace.digest(), uncached.trace.digest());
    assert_eq!(serial.active, uncached.active);
}

/// Acceptance: the planted `RejoinPolicy::TrustSnapshot` regression (a
/// recovered node re-imposes its pre-crash view without re-verification)
/// is caught by the enforced τ-partitionability oracle and ddmin-shrinks
/// to a ≤ 3-event fault script with a printable repro command.
#[test]
fn shrinker_reduces_trust_snapshot_regression_to_minimal_script() {
    let buggy = ChaosRunner::new(ChaosOptions {
        rejoin: RejoinPolicy::TrustSnapshot,
        ..opts()
    });
    // Pinned failing triple (found by seed sweep; the soak test in
    // `chaos::tests` covers the sweep itself).
    let triple = SeedTriple::derived(0xA5, 0);
    let report = buggy.run(triple).expect("campaign runs");
    assert!(
        report.failed(),
        "pinned seed must trip an enforced oracle under TrustSnapshot:\n{}",
        report.trace.render()
    );

    let cex = buggy
        .shrink(triple)
        .expect("shrink runs")
        .expect("failing run must yield a counterexample");
    assert!(
        cex.result.plan.len() <= 3,
        "crash → crash → recover is the whole story, got:\n{}",
        cex.result.plan.describe()
    );
    assert!(cex.result.tests_run > 0);
    assert!(cex.report.failed(), "the minimal plan still fails");
    assert!(
        cex.repro.contains("chaos --one"),
        "repro must name the CLI entry point: {}",
        cex.repro
    );
    assert!(cex.repro.contains(&triple.to_string()));
    println!("{}", cex.repro);

    // The same triple is clean under the sound rejoin policy: the shrunk
    // script is evidence against TrustSnapshot specifically.
    let sound = ChaosRunner::new(opts()).run(triple).expect("sound run");
    assert!(
        !sound.failed(),
        "ReVerify must survive the same campaign:\n{}",
        sound.trace.render()
    );
    let minimal_sound = ChaosRunner::new(opts())
        .run_plan(triple, &cex.result.plan)
        .expect("sound replay of minimal plan");
    assert!(!minimal_sound.failed());
}

/// ISSUE 6 satellite: a scripted crash that lands while a partition is
/// still open repairs inside the degraded topology, and once the split
/// heals the sound `RejoinPolicy::ReVerify` path settles back to a clean
/// enforced-oracle verdict. The trace must witness the
/// split → crash → heal ordering so replays can be audited.
#[test]
fn crash_during_open_partition_stays_clean_under_reverify() {
    // The full-size default deployment: the 40-node quick options are
    // boundary-dominated and rarely leave two internal actives far enough
    // apart to put a partition between them.
    let runner = ChaosRunner::new(ChaosOptions::default());
    // Scan a few topology seeds for a deployment with an internal active
    // node to cut a 2-hop ball around, plus a second internal active
    // outside that ball to crash mid-partition. Robust under any RNG:
    // every internal active is tried as the cut center, and degenerate
    // deployments simply advance to the next seed.
    let (triple, side, victim) = (0..24)
        .filter_map(|i| {
            let t = SeedTriple::derived(0x5EED, i);
            let clean = runner.run_plan(t, &ChaosPlan::new()).ok()?;
            let scenario = runner.scenario(t);
            let internal: Vec<_> = clean
                .active
                .iter()
                .copied()
                .filter(|v| !scenario.boundary[v.index()])
                .collect();
            internal.iter().find_map(|&center| {
                let mut side: BTreeSet<_> = traverse::k_hop_neighbors(&scenario.graph, center, 2)
                    .into_iter()
                    .collect();
                side.insert(center);
                let victim = internal.iter().copied().find(|v| !side.contains(v))?;
                Some((t, side.into_iter().collect::<Vec<_>>(), victim))
            })
        })
        .next()
        .expect("a splittable deployment within 24 seeds");

    let plan = ChaosPlan {
        events: vec![
            ChaosEvent::Split {
                side,
                heal_after: 2,
            },
            ChaosEvent::Crash { node: victim },
        ],
    };
    let report = runner.run_plan(triple, &plan).expect("scripted run");
    assert!(
        !report.failed(),
        "ReVerify must stay clean when a crash lands inside an open partition:\n{}",
        report.trace.render()
    );

    let position = |pred: fn(&TraceEvent) -> bool| report.trace.events.iter().position(pred);
    let split_at =
        position(|e| matches!(e, TraceEvent::Split { .. })).expect("split must be traced");
    let crash_at =
        position(|e| matches!(e, TraceEvent::Crash { .. })).expect("crash must be traced");
    let heal_at = position(|e| matches!(e, TraceEvent::Heal { .. })).expect("heal must be traced");
    assert!(
        split_at < crash_at && crash_at < heal_at,
        "the partition must open before the crash and heal after it:\n{}",
        report.trace.render()
    );
    // The crash landed at plan step 1, strictly inside the split window
    // (heal_after = 2 defers the heal past the end of the script).
    assert!(matches!(
        report.trace.events[crash_at],
        TraceEvent::Crash { step: 1, .. }
    ));
    assert!(matches!(
        report.trace.events[heal_at],
        TraceEvent::Heal { step: 2 }
    ));
}

/// The shrinker's probe path: an explicitly scripted plan replays
/// deterministically and the report carries it verbatim.
#[test]
fn scripted_plans_are_replayed_verbatim() {
    let runner = ChaosRunner::new(opts());
    let triple = SeedTriple::derived(0xBEEF, 0);
    let full = runner.run(triple).expect("run");
    let replay = runner
        .run_plan(triple, &full.plan)
        .expect("replay of the derived plan");
    assert_eq!(full.trace.digest(), replay.trace.digest());
    assert_eq!(full.active, replay.active);
    assert_eq!(full.plan, replay.plan);

    let empty = runner
        .run_plan(triple, &ChaosPlan::new())
        .expect("empty plan");
    assert!(empty.plan.is_empty());
    assert!(!empty.failed());
}
