//! Acceptance tests of the deterministic chaos harness (ISSUE 4):
//! bitwise-identical replay from a seed triple across engine thread
//! counts, and the ddmin shrinker catching a deliberately planted
//! rejoin regression and reducing it to a minimal fault script.

use confine_core::prelude::*;
use confine_netsim::chaos::{ChaosPlan, SeedTriple};

fn opts() -> ChaosOptions {
    ChaosOptions {
        nodes: 40,
        degree: 9.0,
        events: 8,
        ..ChaosOptions::default()
    }
}

/// Acceptance: the same (topology, faults, schedule) triple produces a
/// bitwise-identical trace and final active set whether the VPT engine
/// runs single-threaded or parallel, cached or not — the replay guarantee
/// the whole DST layer rests on.
#[test]
fn replay_is_identical_across_thread_counts_and_cache_modes() {
    let triple = SeedTriple::derived(0xD57, 2);
    let serial = ChaosRunner::new(ChaosOptions {
        threads: 1,
        ..opts()
    })
    .run(triple)
    .expect("serial run");
    let parallel = ChaosRunner::new(ChaosOptions {
        threads: 4,
        ..opts()
    })
    .run(triple)
    .expect("parallel run");
    let uncached = ChaosRunner::new(ChaosOptions {
        threads: 4,
        cache: false,
        ..opts()
    })
    .run(triple)
    .expect("uncached run");

    assert_eq!(
        serial.trace, parallel.trace,
        "trace must not depend on threads"
    );
    assert_eq!(serial.trace.digest(), parallel.trace.digest());
    assert_eq!(serial.active, parallel.active);
    assert_eq!(serial.trace.digest(), uncached.trace.digest());
    assert_eq!(serial.active, uncached.active);
}

/// Acceptance: the planted `RejoinPolicy::TrustSnapshot` regression (a
/// recovered node re-imposes its pre-crash view without re-verification)
/// is caught by the enforced τ-partitionability oracle and ddmin-shrinks
/// to a ≤ 3-event fault script with a printable repro command.
#[test]
fn shrinker_reduces_trust_snapshot_regression_to_minimal_script() {
    let buggy = ChaosRunner::new(ChaosOptions {
        rejoin: RejoinPolicy::TrustSnapshot,
        ..opts()
    });
    // Pinned failing triple (found by seed sweep; the soak test in
    // `chaos::tests` covers the sweep itself).
    let triple = SeedTriple::derived(0xA5, 27);
    let report = buggy.run(triple).expect("campaign runs");
    assert!(
        report.failed(),
        "pinned seed must trip an enforced oracle under TrustSnapshot:\n{}",
        report.trace.render()
    );

    let cex = buggy
        .shrink(triple)
        .expect("shrink runs")
        .expect("failing run must yield a counterexample");
    assert!(
        cex.result.plan.len() <= 3,
        "crash → crash → recover is the whole story, got:\n{}",
        cex.result.plan.describe()
    );
    assert!(cex.result.tests_run > 0);
    assert!(cex.report.failed(), "the minimal plan still fails");
    assert!(
        cex.repro.contains("chaos --one"),
        "repro must name the CLI entry point: {}",
        cex.repro
    );
    assert!(cex.repro.contains(&triple.to_string()));
    println!("{}", cex.repro);

    // The same triple is clean under the sound rejoin policy: the shrunk
    // script is evidence against TrustSnapshot specifically.
    let sound = ChaosRunner::new(opts()).run(triple).expect("sound run");
    assert!(
        !sound.failed(),
        "ReVerify must survive the same campaign:\n{}",
        sound.trace.render()
    );
    let minimal_sound = ChaosRunner::new(opts())
        .run_plan(triple, &cex.result.plan)
        .expect("sound replay of minimal plan");
    assert!(!minimal_sound.failed());
}

/// The shrinker's probe path: an explicitly scripted plan replays
/// deterministically and the report carries it verbatim.
#[test]
fn scripted_plans_are_replayed_verbatim() {
    let runner = ChaosRunner::new(opts());
    let triple = SeedTriple::derived(0xBEEF, 0);
    let full = runner.run(triple).expect("run");
    let replay = runner
        .run_plan(triple, &full.plan)
        .expect("replay of the derived plan");
    assert_eq!(full.trace.digest(), replay.trace.digest());
    assert_eq!(full.active, replay.active);
    assert_eq!(full.plan, replay.plan);

    let empty = runner
        .run_plan(triple, &ChaosPlan::new())
        .expect("empty plan");
    assert!(empty.plan.is_empty());
    assert!(!empty.failed());
}
