//! End-to-end tests of the `confine-cli` binary (spawned as a subprocess).

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_confine-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("confine-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_info_schedule_verify_pipeline() {
    let net = tmp("net.cf");
    let sched = tmp("sched.txt");

    let out = cli()
        .args([
            "generate", "--nodes", "250", "--degree", "20", "--seed", "9",
        ])
        .args(["--out", net.to_str().unwrap()])
        .output()
        .expect("spawn generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("250 nodes"), "unexpected output: {text}");

    let out = cli()
        .args(["info", "--in", net.to_str().unwrap()])
        .output()
        .expect("spawn info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("connected        : true"), "{text}");
    assert!(text.contains("initial partition τ:"), "{text}");

    let out = cli()
        .args([
            "schedule",
            "--in",
            net.to_str().unwrap(),
            "--tau",
            "5",
            "--seed",
            "4",
        ])
        .args(["--out", sched.to_str().unwrap()])
        .output()
        .expect("spawn schedule");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ids = std::fs::read_to_string(&sched).expect("schedule written");
    assert!(ids.lines().count() > 10, "implausibly small coverage set");

    let out = cli()
        .args(["verify", "--in", net.to_str().unwrap(), "--tau", "5"])
        .args(["--active", sched.to_str().unwrap(), "--gamma", "1.0"])
        .output()
        .expect("spawn verify");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "verify failed:\n{text}");
    assert!(text.contains("Satisfied"), "{text}");

    let _ = std::fs::remove_file(net);
    let _ = std::fs::remove_file(sched);
}

#[test]
fn verify_rejects_broken_schedule() {
    let net = tmp("net2.cf");
    let out = cli()
        .args([
            "generate", "--nodes", "200", "--degree", "20", "--seed", "3",
        ])
        .args(["--out", net.to_str().unwrap()])
        .output()
        .expect("spawn generate");
    assert!(out.status.success());

    // A schedule consisting of one node is clearly invalid.
    let sched = tmp("sched2.txt");
    std::fs::write(&sched, "0\n").unwrap();
    let out = cli()
        .args(["verify", "--in", net.to_str().unwrap(), "--tau", "4"])
        .args(["--active", sched.to_str().unwrap()])
        .output()
        .expect("spawn verify");
    assert!(
        !out.status.success(),
        "single-node schedule must fail verification"
    );

    let _ = std::fs::remove_file(net);
    let _ = std::fs::remove_file(sched);
}

#[test]
fn prune_roundtrips_through_the_format() {
    let net = tmp("net3.cf");
    let thin = tmp("thin.cf");
    let out = cli()
        .args([
            "generate", "--nodes", "200", "--degree", "22", "--seed", "6",
        ])
        .args(["--out", net.to_str().unwrap()])
        .output()
        .expect("spawn generate");
    assert!(out.status.success());

    let out = cli()
        .args([
            "prune",
            "--in",
            net.to_str().unwrap(),
            "--tau",
            "4",
            "--seed",
            "2",
        ])
        .args(["--out", thin.to_str().unwrap()])
        .output()
        .expect("spawn prune");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("links pruned"), "{text}");

    // The thinned scenario parses and has fewer links.
    let out = cli()
        .args(["info", "--in", thin.to_str().unwrap()])
        .output()
        .expect("info");
    assert!(out.status.success());
    let info = String::from_utf8_lossy(&out.stdout);
    assert!(info.contains("connected        : true"), "{info}");

    let _ = std::fs::remove_file(net);
    let _ = std::fs::remove_file(thin);
}

#[test]
fn helpful_errors() {
    let out = cli()
        .args(["schedule", "--tau", "4"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--in"));

    let out = cli().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cli().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
}

#[test]
fn engine_flags_change_execution_but_not_the_schedule() {
    let net = tmp("net4.cf");
    let fast = tmp("sched-fast.txt");
    let slow = tmp("sched-slow.txt");
    let out = cli()
        .args([
            "generate", "--nodes", "150", "--degree", "18", "--seed", "12",
        ])
        .args(["--out", net.to_str().unwrap()])
        .output()
        .expect("spawn generate");
    assert!(out.status.success());

    // Default: parallel + cached.
    let out = cli()
        .args(["schedule", "--in", net.to_str().unwrap()])
        .args(["--tau", "4", "--seed", "2", "--out", fast.to_str().unwrap()])
        .output()
        .expect("spawn schedule");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}");
    assert!(text.contains("engine:"), "engine stats missing: {text}");

    // Sequential, uncached: identical coverage set, zero cache traffic.
    let out = cli()
        .args(["schedule", "--in", net.to_str().unwrap()])
        .args(["--tau", "4", "--seed", "2", "--threads", "1", "--no-cache"])
        .args(["--out", slow.to_str().unwrap()])
        .output()
        .expect("spawn schedule");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}");
    assert!(text.contains("0 round hits, 0 memo hits"), "{text}");

    let a = std::fs::read_to_string(&fast).unwrap();
    let b = std::fs::read_to_string(&slow).unwrap();
    assert_eq!(a, b, "engine options must not change the coverage set");

    let _ = std::fs::remove_file(net);
    let _ = std::fs::remove_file(fast);
    let _ = std::fs::remove_file(slow);
}
