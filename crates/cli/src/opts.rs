//! Tiny `--key value` option parsing for the CLI (no external crates).

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Opts {
    values: HashMap<String, String>,
}

impl Opts {
    /// Parses `--key value` pairs; bare flags get the value `"true"`.
    pub fn parse<I: Iterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut pending: Option<String> = None;
        for arg in args {
            if let Some(key) = arg.strip_prefix("--") {
                if let Some(prev) = pending.take() {
                    values.insert(prev, "true".to_string());
                }
                pending = Some(key.to_string());
            } else if let Some(key) = pending.take() {
                values.insert(key, arg);
            }
        }
        if let Some(prev) = pending {
            values.insert(prev, "true".to_string());
        }
        Opts { values }
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<String> {
        self.values.get(key).cloned()
    }

    /// A mandatory string option.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A usize option with a default.
    pub fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// A u64 option with a default.
    pub fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// A bare boolean flag (`--no-cache` style): present ⇒ true.
    pub fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// An f64 option with a default.
    pub fn f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_pairs() {
        let o = opts(&["--nodes", "40", "--out", "x.cf"]);
        assert_eq!(o.usize("nodes", 0).unwrap(), 40);
        assert_eq!(o.require("out").unwrap(), "x.cf");
        assert_eq!(o.f64("degree", 9.5).unwrap(), 9.5);
    }

    #[test]
    fn flags_and_errors() {
        let o = opts(&["--fast", "--tau", "oops"]);
        assert_eq!(o.get("fast").as_deref(), Some("true"));
        assert!(o.usize("tau", 3).is_err());
        assert!(o.require("in").is_err());
    }

    #[test]
    fn trailing_flag() {
        let o = opts(&["--nodes", "7", "--verbose"]);
        assert_eq!(o.get("verbose").as_deref(), Some("true"));
        assert_eq!(o.u64("nodes", 0).unwrap(), 7);
    }

    #[test]
    fn engine_flags() {
        let o = opts(&["--no-cache", "--threads", "4"]);
        assert!(o.flag("no-cache"));
        assert!(!o.flag("cache"));
        assert_eq!(o.usize("threads", 0).unwrap(), 4);
    }
}
