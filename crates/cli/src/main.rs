//! `confine-cli` — generate, inspect, schedule and verify confine-coverage
//! scenarios from the command line.
//!
//! ```text
//! confine-cli generate --nodes 400 --degree 22 --seed 7 --out net.cf
//! confine-cli trace    --nodes 296 --seed 5 --out trace.cf
//! confine-cli info     --in net.cf
//! confine-cli schedule --in net.cf --tau 5 --out sched.txt
//! confine-cli verify   --in net.cf --active sched.txt --tau 5 --gamma 1.0
//! ```
//!
//! Scenarios use the plain-text v1 format of `confine_deploy::format`;
//! schedules are one node id per line.

use std::fmt::Write as _;
use std::process::ExitCode;

use confine_core::config::{blanket_ratio_threshold, MIN_TAU};
use confine_core::prelude::{Dcc, DccBuilder, EngineConfig};
use confine_core::verify::{boundary_partition_tau, verify_criterion, CriterionOutcome};
use confine_deploy::coverage::verify_coverage;
use confine_deploy::format::{read_scenario, write_scenario};
use confine_deploy::outer::extract_outer_walk;
use confine_deploy::scenario::random_udg_scenario;
use confine_deploy::trace::{greenorbs_scenario, TraceConfig};
use confine_deploy::Scenario;
use confine_graph::{cut, traverse, GraphView, Masked, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

mod opts;

use opts::Opts;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = Opts::parse(args);
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "trace" => cmd_trace(&opts),
        "info" => cmd_info(&opts),
        "schedule" => cmd_schedule(&opts),
        "prune" => cmd_prune(&opts),
        "verify" => cmd_verify(&opts),
        "fault-sweep" => cmd_fault_sweep(&opts),
        "chaos" => cmd_chaos(&opts),
        "churn" => cmd_churn(&opts),
        "model" => cmd_model(&opts),
        "serve" => cmd_serve(&opts),
        "client" => cmd_client(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "confine-cli <command> [--key value ...]

commands:
  generate  --nodes N --degree D --seed S [--rc R] --out FILE
            random UDG scenario with a certified boundary ring
  trace     --nodes N --seed S [--rounds K] --out FILE
            synthetic GreenOrbs-style trace topology
  info      --in FILE
            structural summary of a scenario
  schedule  --in FILE --tau T [--seed S] [--out FILE]
            run the DCC scheduler; prints/saves the awake node ids
  prune     --in FILE --tau T [--seed S] [--out FILE]
            run the edge-deletion pass; prints/saves the thinned scenario
  verify    --in FILE --tau T [--active FILE] [--gamma G]
            exact criterion check (+ geometric check when --gamma given)
  fault-sweep --in FILE --tau T [--seed S] [--loss \"0,0.1,0.2,0.3\"]
              [--crashes C]
            distributed runs under loss × mid-run crashes, then a
            post-schedule crash + repair; prints cost, QoC and heartbeat
            false suspicions per cell
  chaos     [--seeds N] [--base-seed S] [--one T:F:S] [--shrink]
            [--plan \"crash 3; crash 7; recover 3\"]
            [--nodes N] [--tau T] [--degree D] [--events E]
            [--rejoin re-verify|trust-snapshot] [--churn]
            deterministic chaos campaigns: seeded crash / recover /
            partition scripts against schedule + repair, with invariant
            oracles; --one replays a single triple, --plan replays it
            under an explicit fault script instead of the derived one,
            --shrink ddmin-reduces failures to a minimal fault script,
            --churn adds move/degrade events to the generated scripts;
            exits nonzero on any enforced-oracle violation
  model     [--policy re-verify|trust-snapshot|both] [--max-n N]
            [--topology path|cycle|both] [--radius K] [--por] [--lower]
            [--base-seed S] [--tries K] [--tau T]
            exhaustive small-N model checking of the discovery/election/
            repair protocol: BFS-enumerates every reachable interleaving
            (symmetry-reduced; --por switches to the sleep-set filter),
            checks coverage + fixpoint oracles at quiescent states and
            classifies declared election stalls; prints a minimal action
            trace per violation and, with --lower, searches for a concrete
            failing chaos repro for its crash/recover skeleton and replays
            it; exits nonzero on any safety violation
  serve     [--addr HOST:PORT] [--journal FILE] [--deadline MS]
            [--max-queue N] [--faults SPEC] [--print-addr]
            run the coverage daemon: warm per-epoch engine state behind a
            flat-combining queue with deadlines, load shedding and an epoch
            journal; restarting on the same --journal recovers the exact
            pre-crash state; SPEC is e.g.
            \"seed=7,drop=5,dup=3,delay=10:40,stall=2:250,crash-after=6\"
  client    --request \"load-epoch 1 120 12000 42 4\" [--addr HOST:PORT]
            [--deadline MS] [--retries N] [--backoff MS] [--seed S]
            one request through the retrying client (jittered backoff);
            prints the response line; requests: load-epoch E N D S T,
            crash N, recover N, what-if N, replay SCRIPT, status
  churn     [--seeds N] [--base-seed S] [--one T:F:S] [--rounds K]
            [--model waypoint|drift] [--speed V] [--pause P]
            [--drift-bound B] [--duty-period D] [--duty-down W]
            [--degrade-every E] [--degrade-pct F] [--quasi]
            [--nodes N] [--tau T] [--degree D]
            streaming churn campaigns: per-round mobility, duty-cycling
            and radio degradation feed topology deltas into the repair
            loop; prints coverage-hole exposure, repair traffic and
            false-suspicion rate per seed; exits nonzero on any
            enforced-oracle violation

engine options (schedule, fault-sweep, chaos, churn):
  --threads N   VPT evaluation threads (0 = all cores, the default;
                chaos defaults to 1 — replay is identical either way)
  --no-cache    disable the neighbourhood-fingerprint verdict memo
  --regions R   shard evaluation across R spatial regions (0/1 = flat
                single-engine path, the default); output is bitwise
                identical to the flat engine at any R
  --region-threads N
                worker threads per region when sharded (0 = divide the
                machine's cores across the regions, the default)";

/// Parses the CLI's uniform engine options — `--threads N`, `--no-cache`,
/// `--regions R` and `--region-threads N` — into an [`EngineConfig`].
fn engine_config(opts: &Opts, default_threads: usize) -> Result<EngineConfig, String> {
    Ok(EngineConfig::builder()
        .threads(opts.usize("threads", default_threads)?)
        .cache(!opts.flag("no-cache"))
        .regions(opts.usize("regions", 0)?)
        .region_threads(opts.usize("region-threads", 0)?)
        .build())
}

/// Seeds a [`Dcc`] builder from the CLI's uniform engine options:
/// `--threads N` (0 = auto), `--no-cache`, `--regions R` and
/// `--region-threads N`.
fn dcc_builder(tau: usize, opts: &Opts) -> Result<DccBuilder, String> {
    Ok(Dcc::builder(tau).engine_config(engine_config(opts, 0)?))
}

fn load(opts: &Opts) -> Result<Scenario, String> {
    let path = opts.require("in")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    read_scenario(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn save(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let nodes = opts.usize("nodes", 400)?;
    let degree = opts.f64("degree", 22.0)?;
    let seed = opts.u64("seed", 1)?;
    let rc = opts.f64("rc", 1.0)?;
    let out = opts.require("out")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = random_udg_scenario(nodes, rc, degree, &mut rng);
    save(&out, &write_scenario(&scenario))?;
    println!(
        "wrote {out}: {} nodes ({} boundary), {} links",
        scenario.graph.node_count(),
        scenario.boundary_count(),
        scenario.graph.edge_count()
    );
    Ok(())
}

fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let seed = opts.u64("seed", 5)?;
    let config = TraceConfig {
        nodes: opts.usize("nodes", 296)?,
        rounds: opts.usize("rounds", 48)?,
        ..TraceConfig::default()
    };
    let out = opts.require("out")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let (scenario, _trace, threshold) = greenorbs_scenario(&config, 0.8, &mut rng);
    save(&out, &write_scenario(&scenario))?;
    println!(
        "wrote {out}: {} nodes ({} boundary), {} links, RSSI threshold {threshold:.1} dBm",
        scenario.graph.node_count(),
        scenario.boundary_count(),
        scenario.graph.edge_count()
    );
    Ok(())
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let s = load(opts)?;
    println!("nodes            : {}", s.graph.node_count());
    println!("links            : {}", s.graph.edge_count());
    println!("average degree   : {:.2}", s.graph.average_degree());
    println!("boundary nodes   : {}", s.boundary_count());
    println!("rc               : {}", s.rc);
    println!(
        "region           : {:?} × {:?}",
        s.region.width(),
        s.region.height()
    );
    println!(
        "target           : {:?} × {:?}",
        s.target.width(),
        s.target.height()
    );
    println!("connected        : {}", traverse::is_connected(&s.graph));
    let cs = cut::cut_structure(&s.graph);
    println!("articulation pts : {}", cs.articulation_points.len());
    println!("bridges          : {}", cs.bridges.len());
    let bounds = confine_cycles::horton::irreducible_cycle_bounds(&s.graph);
    match bounds {
        Some(b) => println!("irreducible cycles: min {} / max {}", b.min, b.max),
        None => println!("irreducible cycles: none (forest)"),
    }
    if let Some(walk) = extract_outer_walk(&s) {
        let all: Vec<NodeId> = s.graph.nodes().collect();
        match boundary_partition_tau(&s, &walk, &all) {
            Some(t) => println!("initial partition τ: {t}"),
            None => println!("initial partition τ: boundary outside cycle space"),
        }
    } else {
        println!("initial partition τ: no certified boundary walk");
    }
    Ok(())
}

fn cmd_schedule(opts: &Opts) -> Result<(), String> {
    let s = load(opts)?;
    let tau = opts.usize("tau", 0)?;
    if tau < MIN_TAU {
        return Err(format!("--tau must be ≥ {MIN_TAU}"));
    }
    let seed = opts.u64("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runner = dcc_builder(tau, opts)?
        .centralized()
        .map_err(|e| format!("scheduler: {e}"))?;
    let set = runner
        .run(&s.graph, &s.boundary, &mut rng)
        .map_err(|e| format!("scheduling: {e}"))?;
    let stats = runner.engine_stats();
    println!(
        "τ = {tau}: {} awake / {} asleep in {} rounds",
        set.active_count(),
        set.deleted.len(),
        set.rounds
    );
    println!(
        "engine: {} VPT evaluations, {} round hits, {} memo hits",
        stats.evaluations, stats.round_hits, stats.memo_hits
    );
    if let Some(out) = opts.get("out") {
        let mut text = String::new();
        for v in &set.active {
            let _ = writeln!(text, "{}", v.index());
        }
        save(&out, &text)?;
        println!("awake set written to {out}");
    }
    Ok(())
}

fn cmd_prune(opts: &Opts) -> Result<(), String> {
    let s = load(opts)?;
    let tau = opts.usize("tau", 0)?;
    if tau < MIN_TAU {
        return Err(format!("--tau must be ≥ {MIN_TAU}"));
    }
    let seed = opts.u64("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let pruned = confine_core::edges::prune_edges(&s.graph, &s.boundary, tau, &mut rng)
        .map_err(|e| format!("pruning: {e}"))?;
    println!(
        "τ = {tau}: {} links pruned ({} → {})",
        pruned.removed.len(),
        s.graph.edge_count(),
        pruned.graph.edge_count()
    );
    if let Some(out) = opts.get("out") {
        let thinned = Scenario {
            graph: pruned.graph,
            ..s
        };
        save(&out, &write_scenario(&thinned))?;
        println!("thinned scenario written to {out}");
    }
    Ok(())
}

fn cmd_fault_sweep(opts: &Opts) -> Result<(), String> {
    use confine_netsim::faults::FaultPlan;
    use confine_netsim::{LinkModel, SimError};

    let s = load(opts)?;
    let tau = opts.usize("tau", 0)?;
    if tau < MIN_TAU {
        return Err(format!("--tau must be ≥ {MIN_TAU}"));
    }
    let seed = opts.u64("seed", 1)?;
    let max_crashes = opts.usize("crashes", 3)?;
    let losses: Vec<f64> = match opts.get("loss") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| format!("--loss: bad probability {t:?}"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![0.0, 0.1, 0.2, 0.3],
    };
    let nodes: Vec<NodeId> = s.graph.nodes().collect();

    println!(
        "{:>5} {:>7} {:>9} {:>8} {:>8} {:>8} {:>10} {:>12} {:>11} {:>9}",
        "loss",
        "crashes",
        "result",
        "msgs",
        "dropped",
        "crashed",
        "QoC",
        "repair_rnds",
        "repair_msgs",
        "falsusp"
    );
    for &p in &losses {
        for c in 0..=max_crashes {
            let cell_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add((p * 1000.0) as u64 * 31 + c as u64);
            let mut rng = StdRng::seed_from_u64(cell_seed);
            let plan = FaultPlan::random_crashes(&nodes, c, 40, cell_seed ^ 0x5eed);
            let link = if p > 0.0 {
                LinkModel::Lossy {
                    p,
                    seed: cell_seed ^ 0x10_55,
                }
            } else {
                LinkModel::Reliable
            };
            let mut dcc = dcc_builder(tau, opts)?
                .link_model(link)
                .fault_plan(plan)
                .distributed()
                .map_err(|e| format!("scheduler: {e}"))?;
            match dcc.run(&s.graph, &s.boundary, &mut rng) {
                Ok((set, stats)) => {
                    let qoc = match verify_criterion(&s, &set.active, tau) {
                        CriterionOutcome::Satisfied => "ok",
                        CriterionOutcome::Violated => "VIOLATED",
                        CriterionOutcome::NoCertifiedBoundary => "n/a",
                    };
                    // Post-schedule crash of one interior active node + repair.
                    // The repair's heartbeat phase runs under the same link
                    // model, so its false-suspicion count exposes how often
                    // loss masquerades as death.
                    let victim = set.active.iter().copied().find(|v| !s.boundary[v.index()]);
                    let (rr, rm, fs) = match victim {
                        Some(v) => {
                            let outcome = dcc_builder(tau, opts)?
                                .comm_range(s.rc)
                                .link_model(link)
                                .repair()
                                .map_err(|e| format!("repair: {e}"))?
                                .repair(&s.graph, &s.boundary, &set.active, v, &mut rng)
                                .map_err(|e| format!("repair: {e}"))?;
                            (
                                outcome.degradation.repair_rounds,
                                outcome.stats.repair_messages,
                                outcome.stats.false_suspicions,
                            )
                        }
                        None => (0, 0, 0),
                    };
                    println!(
                        "{:>5.2} {:>7} {:>9} {:>8} {:>8} {:>8} {:>10} {:>12} {:>11} {:>9}",
                        p,
                        c,
                        "ok",
                        stats.total_messages(),
                        stats.dropped,
                        stats.crashed,
                        qoc,
                        rr,
                        rm,
                        fs
                    );
                }
                Err(SimError::ElectionStalled { retries }) => {
                    println!(
                        "{:>5.2} {:>7} {:>9} {:>8} {:>8} {:>8} {:>10} {:>12} {:>11} {:>9}",
                        p,
                        c,
                        format!("stall({retries})"),
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        "-"
                    );
                }
                Err(e) => return Err(format!("loss {p} crashes {c}: {e}")),
            }
        }
    }
    Ok(())
}

fn cmd_chaos(opts: &Opts) -> Result<(), String> {
    use confine_core::prelude::{ChaosOptions, ChaosRunner, RejoinPolicy};
    use confine_netsim::chaos::SeedTriple;

    let tau = opts.usize("tau", 4)?;
    if tau < MIN_TAU {
        return Err(format!("--tau must be ≥ {MIN_TAU}"));
    }
    let rejoin = match opts.get("rejoin").as_deref() {
        None | Some("re-verify") => RejoinPolicy::ReVerify,
        Some("trust-snapshot") => RejoinPolicy::TrustSnapshot,
        Some(other) => {
            return Err(format!(
                "--rejoin expects re-verify or trust-snapshot, got {other:?}"
            ))
        }
    };
    let runner = ChaosRunner::new(ChaosOptions {
        tau,
        nodes: opts.usize("nodes", 120)?,
        degree: opts.f64("degree", 12.0)?,
        events: opts.usize("events", 6)?,
        rejoin,
        churn: opts.flag("churn"),
        engine: engine_config(opts, 1)?,
    });
    let shrink = opts.flag("shrink");

    // Replay a single triple — under its derived random plan, or under an
    // explicit `--plan "crash 3; crash 7; recover 3"` script (the form the
    // model checker's lowered repro commands take).
    if let Some(spec) = opts.get("one") {
        let triple = SeedTriple::parse(&spec)
            .ok_or_else(|| format!("--one expects topology:faults:schedule, got {spec:?}"))?;
        let report = match opts.get("plan") {
            Some(script) => {
                let plan = confine_netsim::chaos::ChaosPlan::parse_script(&script)?;
                runner.run_plan(triple, &plan)
            }
            None => runner.run(triple),
        }
        .map_err(|e| format!("chaos run: {e}"))?;
        println!("{}", report.trace.render());
        if !report.failed() {
            println!(
                "triple {triple}: clean ({} fault events, {} final actives, digest {:016x})",
                report.plan.len(),
                report.active.len(),
                report.trace.digest()
            );
            return Ok(());
        }
        if shrink && opts.get("plan").is_none() {
            if let Some(cex) = runner.shrink(triple).map_err(|e| format!("shrink: {e}"))? {
                println!("--- minimized counterexample ---");
                println!("{}", cex.repro);
            }
        }
        return Err(format!(
            "triple {triple}: {} enforced oracle violation(s)",
            report.trace.violations().len()
        ));
    }

    // Seed-sweep campaign.
    let seeds = opts.usize("seeds", 25)?;
    let base = opts.u64("base-seed", 0x0D57_C0DE)?;
    let mut failures: Vec<SeedTriple> = Vec::new();
    let mut false_suspicions = 0usize;
    for i in 0..seeds as u64 {
        let triple = SeedTriple::derived(base, i);
        let report = runner
            .run(triple)
            .map_err(|e| format!("seed {i} ({triple}): {e}"))?;
        false_suspicions += report.stats.false_suspicions;
        println!(
            "[{i:>3}] {:>4}  events {:>2}  active {:>3}  msgs {:>7}  false-susp {:>2}  {triple}",
            if report.failed() { "FAIL" } else { "ok" },
            report.plan.len(),
            report.active.len(),
            report.stats.total_messages(),
            report.stats.false_suspicions
        );
        if report.failed() {
            failures.push(triple);
            if shrink {
                if let Some(cex) = runner.shrink(triple).map_err(|e| format!("shrink: {e}"))? {
                    println!("--- minimized counterexample ---");
                    println!("{}", cex.repro);
                }
            }
        }
    }
    if failures.is_empty() {
        println!("{seeds} seeds: all clean, {false_suspicions} false suspicion(s)");
        Ok(())
    } else {
        Err(format!(
            "{} of {seeds} seeds violated enforced oracles: {}",
            failures.len(),
            failures
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}

fn cmd_churn(opts: &Opts) -> Result<(), String> {
    use confine_core::prelude::{ChurnModel, ChurnOptions, ChurnRunner};
    use confine_netsim::chaos::SeedTriple;

    let tau = opts.usize("tau", 4)?;
    if tau < MIN_TAU {
        return Err(format!("--tau must be ≥ {MIN_TAU}"));
    }
    let model = match opts.get("model").as_deref() {
        None | Some("waypoint") => ChurnModel::RandomWaypoint,
        Some("drift") => ChurnModel::BoundedDrift,
        Some(other) => return Err(format!("--model expects waypoint or drift, got {other:?}")),
    };
    let degrade_pct = opts.usize("degrade-pct", 70)?;
    if degrade_pct > 100 {
        return Err("--degrade-pct is a percentage ≤ 100".into());
    }
    let runner = ChurnRunner::new(ChurnOptions {
        tau,
        nodes: opts.usize("nodes", 120)?,
        degree: opts.f64("degree", 12.0)?,
        rounds: opts.usize("rounds", 20)?,
        model,
        speed: opts.f64("speed", 0.05)?,
        pause: opts.usize("pause", 2)?,
        drift_bound: opts.f64("drift-bound", 0.5)?,
        duty_period: opts.usize("duty-period", 8)?,
        duty_down: opts.usize("duty-down", 2)?,
        degrade_every: opts.usize("degrade-every", 5)?,
        degrade_pct: degrade_pct as u8,
        quasi: opts.flag("quasi"),
        engine: engine_config(opts, 1)?,
    });

    // Replay a single triple with its full trace.
    if let Some(spec) = opts.get("one") {
        let triple = SeedTriple::parse(&spec)
            .ok_or_else(|| format!("--one expects topology:faults:schedule, got {spec:?}"))?;
        let report = runner.run(triple).map_err(|e| format!("churn run: {e}"))?;
        println!("{}", report.trace.render());
        let m = &report.metrics;
        println!(
            "hole exposure {:.4}  covered mean {:.2}% min {:.2}%  repair msgs {}  \
             false susp {} ({:.2}/round)  moved {} slept {} woken {} degraded {}",
            m.hole_exposure,
            m.mean_covered * 100.0,
            m.min_covered * 100.0,
            m.repair_messages,
            m.false_suspicions,
            m.suspicion_rate,
            m.moves,
            m.sleeps,
            m.wakes,
            m.degrades
        );
        if report.failed() {
            return Err(format!(
                "triple {triple}: {} enforced oracle violation(s)",
                report.trace.violations().len()
            ));
        }
        println!(
            "triple {triple}: clean ({} rounds, {} final actives, digest {:016x})",
            m.rounds,
            report.active.len(),
            report.trace.digest()
        );
        return Ok(());
    }

    // Seed-sweep campaign.
    let seeds = opts.usize("seeds", 10)?;
    let base = opts.u64("base-seed", 0xC4_02_4E)?;
    let mut failures: Vec<SeedTriple> = Vec::new();
    let mut exposure = 0.0;
    let mut false_suspicions = 0usize;
    for i in 0..seeds as u64 {
        let triple = SeedTriple::derived(base, i);
        let report = runner
            .run(triple)
            .map_err(|e| format!("seed {i} ({triple}): {e}"))?;
        let m = &report.metrics;
        exposure += m.hole_exposure;
        false_suspicions += m.false_suspicions;
        println!(
            "[{i:>3}] {:>4}  exposure {:>7.4}  covered {:>6.2}%  repair msgs {:>6}  \
             false-susp {:>3}  {triple}",
            if report.failed() { "FAIL" } else { "ok" },
            m.hole_exposure,
            m.mean_covered * 100.0,
            m.repair_messages,
            m.false_suspicions
        );
        if report.failed() {
            failures.push(triple);
        }
    }
    if failures.is_empty() {
        println!(
            "{seeds} seeds: all clean, total hole exposure {exposure:.4}, \
             {false_suspicions} false suspicion(s)"
        );
        Ok(())
    } else {
        Err(format!(
            "{} of {seeds} seeds violated enforced oracles: {}",
            failures.len(),
            failures
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}

fn cmd_model(opts: &Opts) -> Result<(), String> {
    use confine_core::prelude::{ChaosOptions, ChaosRunner, RejoinPolicy};
    use confine_model::{explore, Instance, Options, Policy, Topology, Violation};

    let max_n = opts.usize("max-n", 4)?;
    let radius = opts.usize("radius", 1)?;
    let policies: Vec<Policy> = match opts.get("policy").as_deref() {
        None | Some("both") => vec![Policy::ReVerify, Policy::TrustSnapshot],
        Some("re-verify") => vec![Policy::ReVerify],
        Some("trust-snapshot") => vec![Policy::TrustSnapshot],
        Some(other) => {
            return Err(format!(
                "--policy expects re-verify, trust-snapshot or both, got {other:?}"
            ))
        }
    };
    let topologies: Vec<Topology> = match opts.get("topology").as_deref() {
        None | Some("both") => vec![Topology::Path, Topology::Cycle],
        Some("path") => vec![Topology::Path],
        Some("cycle") => vec![Topology::Cycle],
        Some(other) => {
            return Err(format!(
                "--topology expects path, cycle or both, got {other:?}"
            ))
        }
    };
    let options = if opts.flag("por") {
        Options {
            symmetry: false,
            por: true,
            ..Options::default()
        }
    } else {
        Options::default()
    };

    let mut total_violations = 0usize;
    let mut worst: Option<(Policy, Violation)> = None;
    println!("policy          topo   n  states      transitions  filtered  stalls  viol  ms");
    for &policy in &policies {
        for &topo in &topologies {
            for n in 2..=max_n {
                let Some(inst) = Instance::new(topo, n, radius, policy) else {
                    continue;
                };
                let start = std::time::Instant::now();
                let report = explore(&inst, options);
                let ms = start.elapsed().as_millis();
                println!(
                    "{:<15} {:<6} {:>2}  {:>10}  {:>11}  {:>8}  {:>6}  {:>4}  {ms}",
                    format!("{policy:?}"),
                    format!("{topo:?}"),
                    n,
                    report.states,
                    report.transitions,
                    report.filtered,
                    report.stall_states,
                    report.violations.len(),
                );
                total_violations += report.violations.len();
                for v in report.violations {
                    let better = worst
                        .as_ref()
                        .is_none_or(|(_, w)| v.trace.len() < w.trace.len());
                    if better {
                        worst = Some((policy, v));
                    }
                }
                if let Some(stall) = report.stall_example {
                    if policy == Policy::ReVerify && topo == Topology::Path && n == max_n {
                        println!("  declared-stall example: {}", stall.render());
                    }
                }
            }
        }
    }

    let Some((policy, cex)) = worst else {
        println!("no safety violations: every reachable quiescent state is covered and fixpoint");
        return Ok(());
    };
    println!(
        "minimal counterexample ({} actions): {}",
        cex.trace.len(),
        cex.render()
    );
    let script = cex.env_script();
    if opts.flag("lower") {
        let rejoin = match policy {
            Policy::ReVerify => RejoinPolicy::ReVerify,
            Policy::TrustSnapshot => RejoinPolicy::TrustSnapshot,
        };
        let runner = ChaosRunner::new(ChaosOptions {
            tau: opts.usize("tau", 4)?,
            rejoin,
            engine: engine_config(opts, 1)?,
            ..ChaosOptions::default()
        });
        let base = opts.u64("base-seed", 0xC0FFEE)?;
        let tries = opts.u64("tries", 6)?;
        match runner
            .concretize(&script, base, tries)
            .map_err(|e| format!("lowering: {e}"))?
        {
            Some(lowering) => {
                println!("lowered repro: {}", lowering.command);
                let replay = runner
                    .run_plan(lowering.triple, &lowering.plan)
                    .map_err(|e| format!("replay: {e}"))?;
                println!("replay: {}", if replay.failed() { "RED" } else { "GREEN" });
            }
            None => println!("lowering: no failing assignment within the search budget"),
        }
    }
    Err(format!(
        "{total_violations} safety violation(s) across the sweep"
    ))
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    use confine_netsim::server_faults::ServerFaultPlan;
    use confine_server::{serve, CoreConfig, ServerConfig};

    let addr = opts.get("addr").unwrap_or_else(|| "127.0.0.1:7761".into());
    let journal = opts
        .get("journal")
        .unwrap_or_else(|| "confine.journal".into());
    let mut core = CoreConfig::new(journal);
    core.default_deadline_ms = opts.u64("deadline", core.default_deadline_ms)?;
    core.max_queue = opts.usize("max-queue", core.max_queue)?;
    if let Some(spec) = opts.get("faults") {
        core.faults = ServerFaultPlan::parse(&spec).map_err(|e| format!("--faults: {e}"))?;
    }
    let handle = serve(ServerConfig { addr, core }).map_err(|e| format!("serve: {e}"))?;
    if opts.flag("print-addr") {
        // Machine-readable first line so scripts can bind to port 0.
        println!("{}", handle.addr());
    } else {
        println!(
            "confine-server listening on {} (journal: {})",
            handle.addr(),
            opts.get("journal")
                .unwrap_or_else(|| "confine.journal".into())
        );
    }
    // Serve until killed; the journal makes the kill safe.
    loop {
        std::thread::park();
    }
}

fn cmd_client(opts: &Opts) -> Result<(), String> {
    use confine_server::protocol::Request;
    use confine_server::{Client, ClientConfig, Response};

    let addr = opts.get("addr").unwrap_or_else(|| "127.0.0.1:7761".into());
    let request =
        Request::decode(&opts.require("request")?).map_err(|e| format!("--request: {e}"))?;
    let config = ClientConfig {
        deadline_ms: opts.u64("deadline", 5_000)?,
        retries: opts.usize("retries", 4)? as u32,
        backoff_base_ms: opts.u64("backoff", 20)?,
        seed: opts.u64("seed", 1)?,
    };
    let mut client = Client::new(addr, config);
    let response = client.call(request).map_err(|e| e.to_string())?;
    println!("{}", response.encode());
    match response {
        Response::Error(e) => Err(e.to_string()),
        _ => Ok(()),
    }
}

fn cmd_verify(opts: &Opts) -> Result<(), String> {
    let s = load(opts)?;
    let tau = opts.usize("tau", 0)?;
    if tau < MIN_TAU {
        return Err(format!("--tau must be ≥ {MIN_TAU}"));
    }
    let active: Vec<NodeId> = match opts.get("active") {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            let mut ids = Vec::new();
            for (i, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let id: usize = line
                    .parse()
                    .map_err(|_| format!("{path} line {}: bad node id {line:?}", i + 1))?;
                if id >= s.graph.node_count() {
                    return Err(format!("{path} line {}: node {id} out of range", i + 1));
                }
                ids.push(NodeId::from(id));
            }
            ids
        }
        None => s.graph.nodes().collect(),
    };

    // Structural sanity first.
    let masked = Masked::from_active(&s.graph, &active);
    println!("active nodes     : {}", masked.active_count());
    println!("active connected : {}", traverse::is_connected(&masked));

    // The exact cycle-partition criterion.
    let outcome = verify_criterion(&s, &active, tau);
    println!("criterion (τ={tau}) : {outcome:?}");
    if let Some(walk) = extract_outer_walk(&s) {
        if let Some(min_tau) = boundary_partition_tau(&s, &walk, &active) {
            println!("minimal feasible τ: {min_tau}");
        }
    }

    // Optional geometric ground-truth check.
    if let Some(gamma) = opts.get("gamma") {
        let gamma: f64 = gamma
            .parse()
            .map_err(|_| "--gamma expects a number".to_string())?;
        if gamma <= 0.0 {
            return Err("--gamma must be positive".into());
        }
        let rs = s.rc / gamma;
        let resolution = (s.target.width().min(s.target.height()) / 120.0).max(1e-6);
        let report = verify_coverage(&s.positions, &active, rs, s.target, resolution);
        println!(
            "geometric        : {:.2}% covered, {} holes, max hole diameter {:.3}",
            report.covered_fraction * 100.0,
            report.holes.len(),
            report.max_hole_diameter()
        );
        let blanket_possible = gamma <= blanket_ratio_threshold(tau) + 1e-12;
        println!(
            "proposition 1    : γ = {gamma} with τ = {tau} guarantees {}",
            if blanket_possible {
                "blanket coverage".to_string()
            } else {
                format!("holes ≤ {:.2}", (tau as f64 - 2.0) * s.rc)
            }
        );
    }

    if outcome == CriterionOutcome::Violated {
        return Err("criterion violated".into());
    }
    Ok(())
}
