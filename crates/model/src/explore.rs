//! Breadth-first exhaustive exploration of an [`Instance`]'s reachable
//! state space, with canonical state hashing, node-symmetry reduction, an
//! optional sleep-set (DPOR-lite) independent-action filter, safety oracles
//! at quiescent states and a declared-stall liveness classification.
//!
//! BFS gives shortest counterexamples for free: the first violating state
//! discovered sits at minimal action depth, and its trace is reconstructed
//! from parent pointers.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::machine::{Action, Instance, Kind, State, KIND_COUNT};

/// Explorer configuration.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Quotient the visited set by the instance's node-symmetry group.
    pub symmetry: bool,
    /// Apply the sleep-set independent-action filter (DPOR-lite). Mutually
    /// exclusive with `symmetry` (the two reductions are not composed);
    /// when both are set, symmetry wins.
    pub por: bool,
    /// Abort after this many states (safety net; the small-N spaces stay
    /// far below it).
    pub max_states: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            symmetry: true,
            por: false,
            max_states: 20_000_000,
        }
    }
}

/// What went wrong at a reachable quiescent state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// τ-partitionability oracle: a position is uncovered at a quiescent
    /// state and no election stall was declared — a silent coverage tear.
    CoverageHole {
        /// The uncovered position.
        position: usize,
    },
    /// Fixpoint oracle: an awake node is redundant at a quiescent state —
    /// the set is not a pruning fixpoint (over-coverage burns lifetime).
    NotFixpoint {
        /// The redundant awake node.
        node: usize,
    },
    /// No action at all is enabled (cannot happen while rejoin is
    /// available; checked for completeness).
    Deadlock,
}

/// One oracle violation with its minimal reproducing action trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What failed.
    pub kind: ViolationKind,
    /// A shortest action sequence from the initial state to the violating
    /// state (BFS order guarantees minimality).
    pub trace: Vec<Action>,
}

impl Violation {
    /// The environment skeleton of the trace — the crash/recover script a
    /// concrete chaos plan replays (protocol steps happen on their own in
    /// the concrete runner).
    pub fn env_script(&self) -> Vec<EnvOp> {
        self.trace
            .iter()
            .filter_map(|a| match *a {
                Action::Crash(i) => Some(EnvOp::Crash(i)),
                Action::Rejoin(i) => Some(EnvOp::Recover(i)),
                _ => None,
            })
            .collect()
    }

    /// Renders the trace as a one-line arrow chain.
    pub fn render(&self) -> String {
        let steps: Vec<String> = self.trace.iter().map(|a| a.to_string()).collect();
        format!("{:?} after [{}]", self.kind, steps.join(" → "))
    }
}

/// An environment step of a lowered counterexample, in model node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvOp {
    /// Crash this model node.
    Crash(usize),
    /// Recover (rejoin) this model node.
    Recover(usize),
}

/// The per-node lifecycle language over the observable [`Kind`] alphabet,
/// extracted from the explored state space. A concrete trace projection
/// refines the model iff every per-node kind sequence it exhibits starts in
/// `initial_kinds` and only follows `edges` — see the refinement proptest
/// in `confine-core`.
#[derive(Debug, Clone, Default)]
pub struct LifecycleAutomaton {
    /// Kinds that can appear first in some node's observable lifecycle.
    pub initial_kinds: BTreeSet<Kind>,
    /// Observable kind pairs `(a, b)` where `b` can directly follow `a` in
    /// some node's lifecycle along some reachable interleaving.
    pub edges: BTreeSet<(Kind, Kind)>,
}

impl LifecycleAutomaton {
    /// Unions another automaton into this one (used to pool the lifecycle
    /// languages of several instances before a refinement check).
    pub fn merge(&mut self, other: &LifecycleAutomaton) {
        self.initial_kinds
            .extend(other.initial_kinds.iter().copied());
        self.edges.extend(other.edges.iter().copied());
    }

    /// Does the automaton accept this per-node observable kind sequence?
    pub fn accepts(&self, seq: &[Kind]) -> bool {
        let Some(first) = seq.first() else {
            return true;
        };
        if !self.initial_kinds.contains(first) {
            return false;
        }
        seq.windows(2).all(|w| self.edges.contains(&(w[0], w[1])))
    }
}

/// The result of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct (canonical) states reached.
    pub states: usize,
    /// Transitions taken (after any sleep-set filtering).
    pub transitions: usize,
    /// Transitions the sleep-set filter skipped.
    pub filtered: usize,
    /// Order of the node-symmetry group quotiented by (1 = no reduction).
    pub symmetry_group: usize,
    /// Safety violations (coverage hole / fixpoint / deadlock), each with
    /// a minimal trace. Empty means the policy is safe at this N.
    pub violations: Vec<Violation>,
    /// Quiescent states where the protocol *declared* an election stall
    /// (the abstract `SimError::ElectionStalled` class) — reported, not a
    /// safety failure: every hole there is announced, not silent.
    pub stall_states: usize,
    /// A minimal trace into one declared-stall state, if any exist.
    pub stall_example: Option<Violation>,
    /// The observable per-node lifecycle language (refinement reference).
    pub lifecycle: LifecycleAutomaton,
}

impl Report {
    /// Did the exploration prove the policy safe (no violations)?
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively explores `inst` under `opts`.
pub fn explore(inst: &Instance, opts: Options) -> Report {
    let n = inst.len();
    let symmetries = if opts.symmetry {
        inst.symmetries()
    } else {
        vec![(0..n).collect()]
    };
    let use_por = opts.por && !opts.symmetry;

    let mut canon_of: HashMap<u128, u32> = HashMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut parent: Vec<Option<(u32, Action)>> = Vec::new();
    let mut sleep: Vec<u128> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    // (from, action, to, demoted-bitmask) — kept for the lifecycle pass.
    let mut transitions: Vec<(u32, Action, u32, u32)> = Vec::new();
    let mut filtered = 0usize;

    let init = inst.initial();
    let init_key = inst.canonical_key(&init, &symmetries);
    canon_of.insert(init_key, 0);
    states.push(init);
    parent.push(None);
    sleep.push(0);
    queue.push_back(0);

    let mut violations: Vec<Violation> = Vec::new();
    let mut seen_kinds: BTreeSet<ViolationKind> = BTreeSet::new();
    let mut stall_states = 0usize;
    let mut stall_example: Option<Violation> = None;

    // Classify the initial state too (it is quiescent by construction).
    classify(
        inst,
        &states[0],
        0,
        &parent,
        &mut violations,
        &mut seen_kinds,
        &mut stall_states,
        &mut stall_example,
    );

    while let Some(id) = queue.pop_front() {
        if states.len() >= opts.max_states {
            break;
        }
        let enabled = inst.enabled_actions(&states[id as usize]);
        let state_sleep = sleep[id as usize];
        let mut taken_mask = 0u128;
        for &a in &enabled {
            let bit = action_bit(a, n);
            if use_por && state_sleep & bit != 0 {
                filtered += 1;
                continue;
            }
            let (succ, demoted) = inst.apply(&states[id as usize], a);
            let succ_sleep = if use_por {
                let mut m = 0u128;
                let foot_a = inst.footprint(a);
                for &b in &enabled {
                    let b_bit = action_bit(b, n);
                    if (state_sleep | taken_mask) & b_bit != 0 && inst.footprint(b) & foot_a == 0 {
                        m |= b_bit;
                    }
                }
                m
            } else {
                0
            };
            taken_mask |= bit;
            let key = inst.canonical_key(&succ, &symmetries);
            let succ_id = match canon_of.get(&key) {
                Some(&existing) => {
                    if use_por {
                        let merged = sleep[existing as usize] & succ_sleep;
                        if merged != sleep[existing as usize] {
                            // A path with fewer sleeping actions reached an
                            // explored state: re-expand it so the filter
                            // stays sound.
                            sleep[existing as usize] = merged;
                            queue.push_back(existing);
                        }
                    }
                    existing
                }
                None => {
                    let new_id = u32::try_from(states.len()).unwrap_or(u32::MAX);
                    canon_of.insert(key, new_id);
                    states.push(succ);
                    parent.push(Some((id, a)));
                    sleep.push(succ_sleep);
                    queue.push_back(new_id);
                    classify(
                        inst,
                        &states[new_id as usize],
                        new_id,
                        &parent,
                        &mut violations,
                        &mut seen_kinds,
                        &mut stall_states,
                        &mut stall_example,
                    );
                    new_id
                }
            };
            let mut demoted_bits = 0u32;
            for d in demoted {
                demoted_bits |= 1 << d;
            }
            transitions.push((id, a, succ_id, demoted_bits));
        }
    }

    let lifecycle = lifecycle_pass(inst, states.len(), &transitions);

    Report {
        states: states.len(),
        transitions: transitions.len(),
        filtered,
        symmetry_group: symmetries.len(),
        violations,
        stall_states,
        stall_example,
        lifecycle,
    }
}

/// A dense index for an action inside a `u128` sleep mask.
fn action_bit(a: Action, n: usize) -> u128 {
    let kind = match a.kind() {
        Kind::Tick => 0,
        Kind::Miss => 1,
        Kind::Suspect => 2,
        Kind::Wake => 3,
        Kind::ElectRound => 4,
        Kind::ElectRetry => 5,
        Kind::Prune => 6,
        Kind::Crash => 7,
        Kind::Rejoin => 8,
    };
    1u128 << (kind * n + a.subject())
}

impl PartialOrd for ViolationKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ViolationKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(v: &ViolationKind) -> (u8, usize) {
            match v {
                ViolationKind::CoverageHole { position } => (0, *position),
                ViolationKind::NotFixpoint { node } => (1, *node),
                ViolationKind::Deadlock => (2, 0),
            }
        }
        rank(self).cmp(&rank(other))
    }
}

/// Checks one newly discovered state against the oracles; records at most
/// one (minimal, by BFS order) violation per distinct [`ViolationKind`].
#[allow(clippy::too_many_arguments)]
fn classify(
    inst: &Instance,
    s: &State,
    id: u32,
    parent: &[Option<(u32, Action)>],
    violations: &mut Vec<Violation>,
    seen_kinds: &mut BTreeSet<ViolationKind>,
    stall_states: &mut usize,
    stall_example: &mut Option<Violation>,
) {
    let enabled = inst.enabled_actions(s);
    if enabled.is_empty() {
        let kind = ViolationKind::Deadlock;
        if seen_kinds.insert(kind.clone()) {
            violations.push(Violation {
                kind,
                trace: trace_to(parent, id),
            });
        }
        return;
    }
    if !enabled.iter().all(Action::is_environment) {
        return; // not quiescent — oracles judge settled states only
    }
    let n = inst.len();
    let holes: Vec<usize> = (0..n).filter(|&p| !inst.covered(s, p)).collect();
    if !holes.is_empty() {
        if s.nodes.iter().any(|node| node.stalled) {
            // The protocol declared the failure (ElectionStalled): a
            // liveness finding, counted but not a safety violation.
            *stall_states += 1;
            if stall_example.is_none() {
                *stall_example = Some(Violation {
                    kind: ViolationKind::CoverageHole { position: holes[0] },
                    trace: trace_to(parent, id),
                });
            }
        } else {
            let kind = ViolationKind::CoverageHole { position: holes[0] };
            if seen_kinds.insert(kind.clone()) {
                violations.push(Violation {
                    kind,
                    trace: trace_to(parent, id),
                });
            }
        }
        return;
    }
    for j in 0..n {
        if inst.awake(s, j) && inst.redundant(s, j) {
            let kind = ViolationKind::NotFixpoint { node: j };
            if seen_kinds.insert(kind.clone()) {
                violations.push(Violation {
                    kind,
                    trace: trace_to(parent, id),
                });
            }
        }
    }
}

/// Reconstructs the action trace from the initial state to `id`.
fn trace_to(parent: &[Option<(u32, Action)>], id: u32) -> Vec<Action> {
    let mut trace = Vec::new();
    let mut cur = id;
    while let Some((prev, action)) = parent[cur as usize] {
        trace.push(action);
        cur = prev;
    }
    trace.reverse();
    trace
}

/// Computes the observable per-node lifecycle automaton by propagating
/// "last observable kind" sets over the explored transition graph to a
/// fixpoint.
fn lifecycle_pass(
    inst: &Instance,
    state_count: usize,
    transitions: &[(u32, Action, u32, u32)],
) -> LifecycleAutomaton {
    let n = inst.len();
    const START: u16 = 1 << (KIND_COUNT as u16); // "no kind seen yet"
    let mut last: Vec<Vec<u16>> = vec![vec![0; n]; state_count];
    last[0] = vec![START; n];
    let mut auto = LifecycleAutomaton::default();

    let kind_of_bit = |bit: usize| -> Kind {
        [
            Kind::Tick,
            Kind::Miss,
            Kind::Suspect,
            Kind::Wake,
            Kind::ElectRound,
            Kind::ElectRetry,
            Kind::Prune,
            Kind::Crash,
            Kind::Rejoin,
        ][bit]
    };
    let bit_of_kind = |k: Kind| -> u16 {
        1 << match k {
            Kind::Tick => 0,
            Kind::Miss => 1,
            Kind::Suspect => 2,
            Kind::Wake => 3,
            Kind::ElectRound => 4,
            Kind::ElectRetry => 5,
            Kind::Prune => 6,
            Kind::Crash => 7,
            Kind::Rejoin => 8,
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &(from, action, to, demoted_bits) in transitions {
            let src = last[from as usize].clone();
            for x in 0..n {
                // What observable kind, if any, does this transition emit
                // for node x?
                let emitted = if action.subject() == x && action.kind().is_observable() {
                    Some(action.kind())
                } else if demoted_bits & (1 << x) != 0 {
                    Some(Kind::Prune)
                } else {
                    None
                };
                let contribution = match emitted {
                    Some(k) => {
                        for bit in 0..=KIND_COUNT {
                            if src[x] & (1 << bit) == 0 {
                                continue;
                            }
                            if bit == KIND_COUNT {
                                auto.initial_kinds.insert(k);
                            } else {
                                auto.edges.insert((kind_of_bit(bit), k));
                            }
                        }
                        bit_of_kind(k)
                    }
                    None => src[x],
                };
                let cell = &mut last[to as usize][x];
                if *cell | contribution != *cell {
                    *cell |= contribution;
                    changed = true;
                }
            }
        }
    }
    auto
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Policy, Topology};

    fn path4(policy: Policy) -> Instance {
        Instance::new(Topology::Path, 4, 1, policy).unwrap()
    }

    #[test]
    fn reverify_is_safe_at_n4() {
        let report = explore(&path4(Policy::ReVerify), Options::default());
        assert!(report.safe(), "violations: {:?}", report.violations);
        assert!(report.states > 100, "the space is non-trivial");
        assert!(
            report.stall_states > 0,
            "the declared empty-election stall class is reachable"
        );
    }

    #[test]
    fn trust_snapshot_fails_with_a_six_action_counterexample() {
        let report = explore(&path4(Policy::TrustSnapshot), Options::default());
        assert!(!report.safe());
        let hole = report
            .violations
            .iter()
            .find(|v| matches!(v.kind, ViolationKind::CoverageHole { .. }))
            .expect("the planted regression tears coverage");
        assert!(
            hole.trace.len() <= 6,
            "minimal counterexample blew the budget: {}",
            hole.render()
        );
        let script = hole.env_script();
        assert!(script.iter().any(|op| matches!(op, EnvOp::Recover(_))));
        assert!(
            script
                .iter()
                .filter(|op| matches!(op, EnvOp::Crash(_)))
                .count()
                >= 2
        );
    }

    #[test]
    fn symmetry_reduction_preserves_verdicts() {
        for policy in [Policy::ReVerify, Policy::TrustSnapshot] {
            let inst = Instance::new(Topology::Cycle, 4, 1, policy).unwrap();
            let full = explore(
                &inst,
                Options {
                    symmetry: false,
                    ..Options::default()
                },
            );
            let reduced = explore(&inst, Options::default());
            assert!(reduced.states < full.states, "the quotient must shrink");
            assert_eq!(reduced.safe(), full.safe());
            assert_eq!(
                reduced.stall_states > 0,
                full.stall_states > 0,
                "stall reachability must agree"
            );
        }
    }

    #[test]
    fn sleep_set_filter_preserves_states_and_verdicts() {
        for policy in [Policy::ReVerify, Policy::TrustSnapshot] {
            for n in 2..=4 {
                let inst = Instance::new(Topology::Path, n, 1, policy).unwrap();
                let full = explore(
                    &inst,
                    Options {
                        symmetry: false,
                        por: false,
                        ..Options::default()
                    },
                );
                let por = explore(
                    &inst,
                    Options {
                        symmetry: false,
                        por: true,
                        ..Options::default()
                    },
                );
                assert_eq!(por.states, full.states, "POR must not lose states");
                assert_eq!(por.safe(), full.safe());
                assert!(por.transitions + por.filtered >= full.transitions);
            }
        }
    }

    #[test]
    fn lifecycle_automaton_shape() {
        let report = explore(&path4(Policy::ReVerify), Options::default());
        let auto = &report.lifecycle;
        assert!(auto.initial_kinds.contains(&Kind::Crash));
        assert!(auto.initial_kinds.contains(&Kind::Wake));
        assert!(!auto.initial_kinds.contains(&Kind::Rejoin));
        assert!(auto.edges.contains(&(Kind::Crash, Kind::Rejoin)));
        assert!(auto.edges.contains(&(Kind::Wake, Kind::Prune)));
        assert!(
            !auto.edges.contains(&(Kind::Rejoin, Kind::Rejoin)),
            "a node cannot rejoin twice without crashing in between"
        );
        assert!(auto.accepts(&[Kind::Crash, Kind::Rejoin, Kind::Crash]));
        assert!(!auto.accepts(&[Kind::Rejoin]));
    }
}
