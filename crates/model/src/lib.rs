//! # confine-model — exhaustive small-N protocol model checking
//!
//! A dependency-free abstract state machine of the distributed
//! discovery/election/repair protocol (heartbeat tick/miss, suspicion,
//! election round + retry, k-hop wake-up, crash, and rejoin under both
//! `ReVerify` and `TrustSnapshot` policies), plus a BFS explorer that
//! enumerates *every* reachable interleaving for small node counts with
//! canonical state hashing, node-symmetry reduction and an optional
//! sleep-set independent-action filter.
//!
//! Each reachable quiescent state is checked against the
//! τ-partitionability oracle (is every position covered by an awake node
//! within the wake radius?) and the fixpoint oracle (is no awake node
//! redundant?); states where the protocol *declared* an election stall are
//! classified separately as liveness findings. On violation the explorer
//! reconstructs a shortest action trace and exposes its environment
//! skeleton ([`EnvOp`] crash/recover script) so `confine-core` can lower
//! it into a concrete failing `ChaosPlan` repro.
//!
//! The [`LifecycleAutomaton`] extracted during exploration is the
//! refinement reference: concrete chaos traces project onto per-node
//! observable kind sequences which must stay inside the model's reachable
//! lifecycle language (see the refinement proptest in `confine-core`).
//!
//! ```
//! use confine_model::{explore, Instance, Options, Policy, Topology};
//!
//! let inst = Instance::new(Topology::Path, 4, 1, Policy::ReVerify).unwrap();
//! let report = explore(&inst, Options::default());
//! assert!(report.safe());
//!
//! let inst = Instance::new(Topology::Path, 4, 1, Policy::TrustSnapshot).unwrap();
//! let report = explore(&inst, Options::default());
//! assert!(!report.safe());
//! assert!(report.violations[0].trace.len() <= 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod machine;

pub use explore::{explore, EnvOp, LifecycleAutomaton, Options, Report, Violation, ViolationKind};
pub use machine::{
    Action, Instance, Kind, NodeState, Policy, Role, State, SusPhase, Topology, KIND_COUNT,
    MAX_NODES,
};
