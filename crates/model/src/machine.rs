//! The abstract protocol state machine: per-node [`NodeState`]s driven by an
//! exhaustively enumerable [`Action`] alphabet.
//!
//! This is a *small-N abstraction* of `confine-core`'s repair protocol
//! (DESIGN.md §8, §11), in the `NodeAction`/`NodeState` state-machine style
//! of polestar-rs (SNIPPETS.md snippet 2), hand-rolled with zero
//! dependencies. The mapping to the concrete system:
//!
//! * **Positions and coverage.** Nodes sit on a path or cycle; position `p`
//!   is *covered* iff an awake node lies within hop distance `k`. This is
//!   the τ-partitionability oracle collapsed to its combinatorial core: in
//!   the concrete system a certified boundary stays τ-partitionable exactly
//!   while every sensing region keeps an awake node within the
//!   `⌈τ/2⌉`-ball (Prop. 2); here `k` plays the role of `⌈τ/2⌉`.
//! * **Heartbeats.** A crashed node's neighbours miss its heartbeat
//!   ([`Action::Miss`], timeout 1), then raise suspicion
//!   ([`Action::Suspect`]). A rejoined node's first heartbeat
//!   ([`Action::Tick`]) clears a stale miss counter.
//! * **Wake-up propagation.** While a suspicion is open, sleepers inside
//!   the suspect's `k`-ball wake one by one ([`Action::Wake`]) — the
//!   per-hop interleavings of the concrete `WakeFlood`. A wake that
//!   restores the ball's coverage completes the repair (the local election
//!   concludes with the substitute in place).
//! * **Election round + retry.** If the flood finds no sleeper to wake and
//!   the ball is still uncovered, the election comes up empty:
//!   [`Action::ElectRetry`] burns the retry budget, then
//!   [`Action::ElectRound`] declares the stall — the abstract image of
//!   `SimError::ElectionStalled`.
//! * **Prune.** Outside repair, a redundant woken substitute is elected
//!   back to sleep ([`Action::Prune`]) — the re-VPT fixpoint pruning, with
//!   redundancy standing in for "vertex deletion test passes".
//! * **Crash / rejoin.** [`Action::Crash`] snapshots the awake set
//!   restricted to the victim's `k`-ball (what the node's neighbourhood
//!   view knew). [`Action::Rejoin`] re-enters it under the configured
//!   [`Policy`]: `ReVerify` wakes the rejoiner as a prunable substitute and
//!   lets redundancy-guarded pruning settle the set; `TrustSnapshot`
//!   reinstates the stale snapshot verbatim, demoting every awake in-ball
//!   node the snapshot does not list — the deliberately planted regression
//!   of DESIGN.md §11.

/// Which rejoin discipline the model runs under; mirrors
/// `confine_core::repair::RejoinPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Sound: a rejoiner wakes as a substitute and the fixpoint pruning
    /// decides who sleeps.
    ReVerify,
    /// The planted regression: the rejoiner trusts its pre-crash snapshot
    /// and demotes substitutes without re-verification.
    TrustSnapshot,
}

/// The instance topology: `n` nodes in a line or a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Nodes `0..n` with edges `i — i+1`.
    Path,
    /// As [`Topology::Path`] plus the closing edge `n-1 — 0`.
    Cycle,
}

/// A node's scheduling role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Awake since the initial schedule (or reinstated by a
    /// `TrustSnapshot` rejoin).
    Active,
    /// Asleep; a redundancy reserve.
    Sleeping,
    /// Woken as a substitute during repair; prunable once redundant.
    Woken,
}

/// Suspicion lifecycle of one (crashed) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SusPhase {
    /// No suspicion raised.
    Clear,
    /// Suspicion raised; a repair (wake flood + election) is in flight.
    Suspected,
    /// The repair for this suspicion has run to completion (successfully
    /// or into a declared stall); it will not re-fire.
    Handled,
}

/// One node of the abstract machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeState {
    /// Scheduling role (meaningful while not crashed; frozen across a
    /// crash as the pre-crash role).
    pub role: Role,
    /// Crash-stopped?
    pub crashed: bool,
    /// Heartbeat miss observed (timeout = 1 silent round).
    pub missed: bool,
    /// Suspicion lifecycle.
    pub phase: SusPhase,
    /// Did the repair for this node end in a declared election stall?
    pub stalled: bool,
    /// Has the empty election already burned its one retry?
    pub retried: bool,
    /// Is this node's awake verdict *unverified*? Set only by a
    /// `TrustSnapshot` rejoin (the policy reinstates the node without
    /// re-running a single VPT check) and blocks pruning: the concrete
    /// system prunes redundancy in the verification pass this policy
    /// skips, so an unverified-redundant node is stuck — exactly the
    /// fixpoint-oracle failure class of the concrete chaos harness.
    pub trusted: bool,
    /// Awake bitmap over the node's `k`-ball at crash time (bit `j` set ⇔
    /// node `j` was awake); the rejoin snapshot. Valid only while crashed.
    pub snapshot: u8,
}

impl NodeState {
    fn initial(role: Role) -> Self {
        NodeState {
            role,
            crashed: false,
            missed: false,
            phase: SusPhase::Clear,
            stalled: false,
            retried: false,
            trusted: false,
            snapshot: 0,
        }
    }

    /// Packs the node into [`NODE_BITS`] bits for canonical state keys.
    fn encode(&self) -> u32 {
        let role = match self.role {
            Role::Active => 0u32,
            Role::Sleeping => 1,
            Role::Woken => 2,
        };
        let phase = match self.phase {
            SusPhase::Clear => 0u32,
            SusPhase::Suspected => 1,
            SusPhase::Handled => 2,
        };
        role | (u32::from(self.crashed) << 2)
            | (u32::from(self.missed) << 3)
            | (phase << 4)
            | (u32::from(self.stalled) << 6)
            | (u32::from(self.retried) << 7)
            | (u32::from(self.trusted) << 8)
            | (u32::from(self.snapshot) << 9)
    }
}

/// Bits one [`NodeState`] occupies in a packed state key.
const NODE_BITS: usize = 17;

/// A global state: one [`NodeState`] per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Per-node states, indexed by node id.
    pub nodes: Vec<NodeState>,
}

impl State {
    /// Packs the state into a `u128` key (exact for `n ≤ 7`:
    /// `7 × NODE_BITS = 119 ≤ 128`).
    pub fn encode(&self) -> u128 {
        let mut key = 0u128;
        for (i, node) in self.nodes.iter().enumerate() {
            key |= u128::from(node.encode()) << (NODE_BITS * i);
        }
        key
    }
}

/// One protocol or environment step. The subject node is the first field
/// throughout, so traces read uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// A (rejoined) node's heartbeat clears a stale miss counter.
    Tick(usize),
    /// A crashed node's heartbeat goes silent for a round.
    Miss(usize),
    /// The silence crosses the timeout: suspicion raised, repair starts.
    Suspect(usize),
    /// The wake flood of an open suspicion reaches this sleeper.
    Wake(usize),
    /// The election for this suspect's repair concludes (successfully, or
    /// declaring a stall once the retry budget is spent).
    ElectRound(usize),
    /// The election came up empty but the retry budget is not yet spent.
    ElectRetry(usize),
    /// Fixpoint pruning elects a redundant substitute back to sleep.
    Prune(usize),
    /// Environment: crash-stop an awake node, snapshotting its ball.
    Crash(usize),
    /// Environment: the crashed node recovers and rejoins under the
    /// instance's [`Policy`].
    Rejoin(usize),
}

impl Action {
    /// The node the action is about.
    pub fn subject(&self) -> usize {
        match *self {
            Action::Tick(i)
            | Action::Miss(i)
            | Action::Suspect(i)
            | Action::Wake(i)
            | Action::ElectRound(i)
            | Action::ElectRetry(i)
            | Action::Prune(i)
            | Action::Crash(i)
            | Action::Rejoin(i) => i,
        }
    }

    /// The action's [`Kind`].
    pub fn kind(&self) -> Kind {
        match self {
            Action::Tick(_) => Kind::Tick,
            Action::Miss(_) => Kind::Miss,
            Action::Suspect(_) => Kind::Suspect,
            Action::Wake(_) => Kind::Wake,
            Action::ElectRound(_) => Kind::ElectRound,
            Action::ElectRetry(_) => Kind::ElectRetry,
            Action::Prune(_) => Kind::Prune,
            Action::Crash(_) => Kind::Crash,
            Action::Rejoin(_) => Kind::Rejoin,
        }
    }

    /// Is this an environment action (fault injection) rather than a
    /// protocol step?
    pub fn is_environment(&self) -> bool {
        matches!(self, Action::Crash(_) | Action::Rejoin(_))
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (name, i) = match *self {
            Action::Tick(i) => ("tick", i),
            Action::Miss(i) => ("miss", i),
            Action::Suspect(i) => ("suspect", i),
            Action::Wake(i) => ("wake", i),
            Action::ElectRound(i) => ("elect", i),
            Action::ElectRetry(i) => ("retry", i),
            Action::Prune(i) => ("prune", i),
            Action::Crash(i) => ("crash", i),
            Action::Rejoin(i) => ("rejoin", i),
        };
        write!(f, "{name}({i})")
    }
}

/// Action kinds without the subject — the alphabet of the per-node
/// lifecycle language the refinement check compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// See [`Action::Tick`].
    Tick,
    /// See [`Action::Miss`].
    Miss,
    /// See [`Action::Suspect`].
    Suspect,
    /// See [`Action::Wake`].
    Wake,
    /// See [`Action::ElectRound`].
    ElectRound,
    /// See [`Action::ElectRetry`].
    ElectRetry,
    /// See [`Action::Prune`] (also emitted for the demotions a
    /// `TrustSnapshot` rejoin performs as a side effect).
    Prune,
    /// See [`Action::Crash`].
    Crash,
    /// See [`Action::Rejoin`].
    Rejoin,
}

impl Kind {
    /// The kinds a concrete chaos trace can witness (crashes, recoveries
    /// and membership changes); the internal heartbeat/election kinds are
    /// invisible to the concrete trace and excluded from the refinement
    /// alphabet.
    pub const OBSERVABLE: [Kind; 4] = [Kind::Crash, Kind::Rejoin, Kind::Wake, Kind::Prune];

    /// Is this kind part of the refinement-observable alphabet?
    pub fn is_observable(&self) -> bool {
        Kind::OBSERVABLE.contains(self)
    }
}

/// The number of action kinds (size of the [`Kind`] alphabet).
pub const KIND_COUNT: usize = 9;

/// A fully configured small-N instance of the abstract protocol.
#[derive(Debug, Clone)]
pub struct Instance {
    topo: Topology,
    n: usize,
    k: usize,
    policy: Policy,
}

/// The largest supported instance (state keys stay exact in `u128`:
/// `MAX_NODES × NODE_BITS = 119 ≤ 128`).
pub const MAX_NODES: usize = 7;

impl Instance {
    /// Builds an instance: `n` nodes on `topo`, wake/coverage radius `k`,
    /// rejoining under `policy`. Returns `None` for `n < 2`, `n >`
    /// [`MAX_NODES`] or `k == 0`.
    pub fn new(topo: Topology, n: usize, k: usize, policy: Policy) -> Option<Self> {
        if !(2..=MAX_NODES).contains(&n) || k == 0 {
            return None;
        }
        Some(Instance { topo, n, k, policy })
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (instances have ≥ 2 nodes); present for API hygiene.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The rejoin policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Hop distance between two positions.
    pub fn dist(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        match self.topo {
            Topology::Path => d,
            Topology::Cycle => d.min(self.n - d),
        }
    }

    /// Is `b` within the `k`-ball of `a` (inclusive)?
    pub fn in_ball(&self, a: usize, b: usize) -> bool {
        self.dist(a, b) <= self.k
    }

    /// The initial state: a greedy leftmost-first dominating set is
    /// active (node 0 always), the rest asleep. On paths and even cycles
    /// this is exactly the every-other-node pattern; on odd cycles the
    /// greedy sweep stops early so that every initial active stays
    /// essential and the state is a coverage *fixpoint*, not merely a
    /// cover.
    pub fn initial(&self) -> State {
        let mut active = vec![false; self.n];
        for i in 0..self.n {
            let covered = (0..self.n).any(|j| active[j] && self.in_ball(j, i));
            if !covered {
                active[i] = true;
            }
        }
        State {
            nodes: active
                .into_iter()
                .map(|a| NodeState::initial(if a { Role::Active } else { Role::Sleeping }))
                .collect(),
        }
    }

    /// Is node `j` awake (not crashed, not sleeping)?
    pub fn awake(&self, s: &State, j: usize) -> bool {
        !s.nodes[j].crashed && s.nodes[j].role != Role::Sleeping
    }

    /// Is position `p` covered by an awake node within `k` hops?
    pub fn covered(&self, s: &State, p: usize) -> bool {
        (0..self.n).any(|q| self.awake(s, q) && self.in_ball(p, q))
    }

    /// Is position `p` still covered with node `x` removed from the awake
    /// set?
    fn covered_without(&self, s: &State, p: usize, x: usize) -> bool {
        (0..self.n).any(|q| q != x && self.awake(s, q) && self.in_ball(p, q))
    }

    /// Is every position of `i`'s ball covered?
    fn ball_covered(&self, s: &State, i: usize) -> bool {
        (0..self.n).all(|p| !self.in_ball(i, p) || self.covered(s, p))
    }

    /// Could node `j` sleep without un-covering any currently covered
    /// position? (Monotone: only positions that are covered now count, so
    /// pruning never widens an existing hole.)
    pub fn redundant(&self, s: &State, j: usize) -> bool {
        self.awake(s, j)
            && (0..self.n).all(|p| !self.covered(s, p) || self.covered_without(s, p, j))
    }

    /// Is some sleeper in `i`'s ball still available to wake?
    fn wake_available(&self, s: &State, i: usize) -> bool {
        (0..self.n)
            .any(|j| self.in_ball(i, j) && !s.nodes[j].crashed && s.nodes[j].role == Role::Sleeping)
    }

    fn any_suspected(&self, s: &State) -> bool {
        s.nodes.iter().any(|n| n.phase == SusPhase::Suspected)
    }

    /// Awake bitmap restricted to `i`'s ball — the rejoin snapshot a
    /// crashing node takes of its neighbourhood view.
    fn ball_snapshot(&self, s: &State, i: usize) -> u8 {
        let mut bits = 0u8;
        for j in 0..self.n {
            if self.in_ball(i, j) && self.awake(s, j) {
                bits |= 1 << j;
            }
        }
        bits
    }

    /// Is `a` enabled in `s`?
    pub fn enabled(&self, s: &State, a: Action) -> bool {
        match a {
            Action::Tick(i) => !s.nodes[i].crashed && s.nodes[i].missed,
            Action::Miss(i) => s.nodes[i].crashed && !s.nodes[i].missed,
            Action::Suspect(i) => {
                s.nodes[i].crashed && s.nodes[i].missed && s.nodes[i].phase == SusPhase::Clear
            }
            Action::Wake(j) => {
                !s.nodes[j].crashed
                    && s.nodes[j].role == Role::Sleeping
                    && (0..self.n)
                        .any(|i| s.nodes[i].phase == SusPhase::Suspected && self.in_ball(i, j))
            }
            Action::ElectRound(i) => {
                s.nodes[i].phase == SusPhase::Suspected
                    && !self.wake_available(s, i)
                    && (self.ball_covered(s, i) || s.nodes[i].retried)
            }
            Action::ElectRetry(i) => {
                s.nodes[i].phase == SusPhase::Suspected
                    && !self.wake_available(s, i)
                    && !self.ball_covered(s, i)
                    && !s.nodes[i].retried
            }
            Action::Prune(j) => {
                self.awake(s, j)
                    && !s.nodes[j].trusted
                    && !self.any_suspected(s)
                    && self.redundant(s, j)
            }
            Action::Crash(i) => !s.nodes[i].crashed && self.awake(s, i),
            Action::Rejoin(i) => s.nodes[i].crashed,
        }
    }

    /// Applies `a` to `s` (caller guarantees `a` is enabled). Returns the
    /// successor state plus any *side-effect demotions* (nodes a
    /// `TrustSnapshot` rejoin put back to sleep) — the refinement
    /// projection records those as [`Kind::Prune`] events on the demoted
    /// nodes.
    pub fn apply(&self, s: &State, a: Action) -> (State, Vec<usize>) {
        let mut t = s.clone();
        let mut demoted = Vec::new();
        match a {
            Action::Tick(i) => t.nodes[i].missed = false,
            Action::Miss(i) => t.nodes[i].missed = true,
            Action::Suspect(i) => t.nodes[i].phase = SusPhase::Suspected,
            Action::Wake(j) => {
                t.nodes[j].role = Role::Woken;
                // A wake is a live local decision: the woken substitute is
                // verified by construction and immediately prunable again.
                t.nodes[j].trusted = false;
                // A wake that restores a suspect's ball coverage concludes
                // that repair: the local election has its substitute.
                for i in 0..self.n {
                    if t.nodes[i].phase == SusPhase::Suspected && self.ball_covered(&t, i) {
                        t.nodes[i].phase = SusPhase::Handled;
                    }
                }
            }
            Action::ElectRound(i) => {
                t.nodes[i].phase = SusPhase::Handled;
                if !self.ball_covered(&t, i) {
                    t.nodes[i].stalled = true;
                }
            }
            Action::ElectRetry(i) => t.nodes[i].retried = true,
            Action::Prune(j) => t.nodes[j].role = Role::Sleeping,
            Action::Crash(i) => {
                t.nodes[i].snapshot = self.ball_snapshot(s, i);
                t.nodes[i].crashed = true;
            }
            Action::Rejoin(i) => {
                let snapshot = t.nodes[i].snapshot;
                t.nodes[i] = NodeState::initial(match self.policy {
                    Policy::ReVerify => Role::Woken,
                    Policy::TrustSnapshot => Role::Active,
                });
                // Under `TrustSnapshot` the rejoiner is reinstated without
                // re-verification: it is *trusted* (never pruned), which is
                // exactly what lets the fixpoint oracle catch redundant
                // unverified rejoiners (`is_vpt_fixpoint` in the concrete
                // scheduler fails the same way).
                t.nodes[i].trusted = self.policy == Policy::TrustSnapshot;
                // Preserve the stale miss the crash left behind: the first
                // post-rejoin heartbeat (Tick) clears it.
                t.nodes[i].missed = s.nodes[i].missed;
                if self.policy == Policy::TrustSnapshot {
                    // The planted regression: demote every awake in-ball
                    // node the stale snapshot does not list, with zero
                    // verification rounds (repair.rs `TrustSnapshot`).
                    for j in 0..self.n {
                        if j != i
                            && self.in_ball(i, j)
                            && self.awake(&t, j)
                            && snapshot & (1 << j) == 0
                        {
                            t.nodes[j].role = Role::Sleeping;
                            demoted.push(j);
                        }
                    }
                }
            }
        }
        (t, demoted)
    }

    /// All actions enabled in `s`, protocol steps before environment
    /// steps, in subject order — the canonical expansion order of the
    /// explorer.
    pub fn enabled_actions(&self, s: &State) -> Vec<Action> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for a in [
                Action::Tick(i),
                Action::Miss(i),
                Action::Suspect(i),
                Action::Wake(i),
                Action::ElectRound(i),
                Action::ElectRetry(i),
                Action::Prune(i),
            ] {
                if self.enabled(s, a) {
                    out.push(a);
                }
            }
        }
        for i in 0..self.n {
            for a in [Action::Crash(i), Action::Rejoin(i)] {
                if self.enabled(s, a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Is `s` protocol-quiescent (no heartbeat, wake, election or prune
    /// step enabled — only the environment could move)?
    pub fn quiescent(&self, s: &State) -> bool {
        self.enabled_actions(s).iter().all(|a| a.is_environment())
    }

    /// The topology automorphisms that also fix the initial role
    /// assignment — the node-symmetry group the explorer quotients by.
    pub fn symmetries(&self) -> Vec<Vec<usize>> {
        let init = self.initial();
        let mut perms: Vec<Vec<usize>> = vec![(0..self.n).collect()];
        permutations(self.n, &mut |perm| {
            if perm.iter().enumerate().all(|(i, &pi)| i == pi) {
                return; // identity already included
            }
            let adjacency_preserved = (0..self.n).all(|a| {
                (0..self.n).all(|b| self.dist(a, b) != 1 || self.dist(perm[a], perm[b]) == 1)
            });
            let roles_preserved =
                (0..self.n).all(|i| init.nodes[i].role == init.nodes[perm[i]].role);
            if adjacency_preserved && roles_preserved {
                perms.push(perm.to_vec());
            }
        });
        perms
    }

    /// The canonical key of `s`: the minimum encoding over the symmetry
    /// group (computed once by the explorer and passed in).
    pub fn canonical_key(&self, s: &State, symmetries: &[Vec<usize>]) -> u128 {
        let mut best = u128::MAX;
        let mut scratch = s.clone();
        for perm in symmetries {
            for (i, &pi) in perm.iter().enumerate() {
                let mut node = s.nodes[i];
                node.snapshot = permute_bits(node.snapshot, perm, self.n);
                scratch.nodes[pi] = node;
            }
            best = best.min(scratch.encode());
        }
        best
    }

    /// The dependency footprint of `a`: the set of nodes whose state the
    /// action reads or writes, as a bitmask. Two actions with disjoint
    /// footprints commute — the independence relation of the DPOR-lite
    /// filter. `Prune` and `ElectRound` read global coverage, so their
    /// footprint is everything.
    pub fn footprint(&self, a: Action) -> u32 {
        match a {
            Action::Prune(_) | Action::ElectRound(_) | Action::ElectRetry(_) => {
                (1u32 << self.n) - 1
            }
            Action::Tick(i) | Action::Miss(i) => 1 << i,
            // Suspect(i) changes which wakes are enabled inside i's ball;
            // Crash/Rejoin read and write the ball; Wake(j) reads the
            // suspicions within k and completes repairs whose ball it
            // touches — conservatively 2k around the subject.
            Action::Suspect(i) | Action::Crash(i) | Action::Rejoin(i) | Action::Wake(i) => {
                let mut bits = 0u32;
                for j in 0..self.n {
                    if self.dist(i, j) <= 2 * self.k {
                        bits |= 1 << j;
                    }
                }
                bits
            }
        }
    }
}

/// Calls `f` with every permutation of `0..n` (heap's algorithm, n ≤ 8).
fn permutations(n: usize, f: &mut dyn FnMut(&[usize])) {
    let mut items: Vec<usize> = (0..n).collect();
    heap_recurse(n, &mut items, f);
}

fn heap_recurse(k: usize, items: &mut Vec<usize>, f: &mut dyn FnMut(&[usize])) {
    if k <= 1 {
        f(items);
        return;
    }
    for i in 0..k {
        heap_recurse(k - 1, items, f);
        if k % 2 == 0 {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Applies a node permutation to a ball bitmap.
fn permute_bits(bits: u8, perm: &[usize], n: usize) -> u8 {
    let mut out = 0u8;
    for (j, &pj) in perm.iter().enumerate().take(n) {
        if bits & (1 << j) != 0 {
            out |= 1 << pj;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4(policy: Policy) -> Instance {
        Instance::new(Topology::Path, 4, 1, policy).unwrap()
    }

    #[test]
    fn initial_state_is_a_covered_fixpoint() {
        for topo in [Topology::Path, Topology::Cycle] {
            for n in 2..=4 {
                let inst = Instance::new(topo, n, 1, Policy::ReVerify).unwrap();
                let s = inst.initial();
                for p in 0..n {
                    assert!(inst.covered(&s, p), "{topo:?} n={n} position {p}");
                }
                for j in 0..n {
                    assert!(
                        !inst.redundant(&s, j) || !inst.awake(&s, j),
                        "{topo:?} n={n}: initial active {j} must be essential"
                    );
                }
            }
        }
    }

    #[test]
    fn crash_snapshot_is_ball_restricted() {
        let inst = path4(Policy::TrustSnapshot);
        let s = inst.initial();
        assert!(inst.enabled(&s, Action::Crash(2)));
        let (t, demoted) = inst.apply(&s, Action::Crash(2));
        assert!(demoted.is_empty());
        // Ball of 2 is {1,2,3}; awake inside it: just 2 itself (0 is
        // outside the ball).
        assert_eq!(t.nodes[2].snapshot, 0b0100);
        assert!(t.nodes[2].crashed);
    }

    #[test]
    fn trust_snapshot_rejoin_demotes_unverified_substitutes() {
        let inst = path4(Policy::TrustSnapshot);
        let mut s = inst.initial();
        for a in [
            Action::Crash(2),
            Action::Crash(0),
            Action::Miss(0),
            Action::Suspect(0),
            Action::Wake(1),
        ] {
            assert!(inst.enabled(&s, a), "{a} must be enabled");
            s = inst.apply(&s, a).0;
        }
        // The covering wake concluded node 0's repair.
        assert_eq!(s.nodes[0].phase, SusPhase::Handled);
        assert!(inst.enabled(&s, Action::Rejoin(2)));
        let (t, demoted) = inst.apply(&s, Action::Rejoin(2));
        assert_eq!(demoted, vec![1], "the substitute is demoted unverified");
        assert!(inst.quiescent(&t), "nothing re-detects the tear");
        assert!(!inst.covered(&t, 0), "node 0's region is now a hole");
        assert!(!t.nodes.iter().any(|n| n.stalled));
    }

    #[test]
    fn reverify_rejoin_keeps_the_substitute_until_pruned() {
        let inst = path4(Policy::ReVerify);
        let mut s = inst.initial();
        for a in [
            Action::Crash(2),
            Action::Crash(0),
            Action::Miss(0),
            Action::Suspect(0),
            Action::Wake(1),
            Action::Rejoin(2),
        ] {
            s = inst.apply(&s, a).0;
        }
        assert!((0..4).all(|p| inst.covered(&s, p)), "coverage survives");
        assert_eq!(s.nodes[2].role, Role::Woken, "rejoiner re-earns its slot");
    }

    #[test]
    fn empty_election_declares_a_stall_after_one_retry() {
        let inst = path4(Policy::ReVerify);
        let mut s = inst.initial();
        for a in [
            Action::Crash(0),
            Action::Miss(0),
            Action::Suspect(0),
            Action::Wake(1),
            Action::Crash(1),
            Action::Miss(1),
            Action::Suspect(1),
        ] {
            assert!(inst.enabled(&s, a), "{a} must be enabled");
            s = inst.apply(&s, a).0;
        }
        // Ball of 1 is {0,1,2}: 0 crashed, 2 active — no sleeper to wake.
        assert!(inst.enabled(&s, Action::ElectRetry(1)));
        assert!(!inst.enabled(&s, Action::ElectRound(1)));
        s = inst.apply(&s, Action::ElectRetry(1)).0;
        assert!(inst.enabled(&s, Action::ElectRound(1)));
        s = inst.apply(&s, Action::ElectRound(1)).0;
        assert!(s.nodes[1].stalled, "the empty election is a declared stall");
    }

    #[test]
    fn symmetry_group_sizes() {
        // Path n=4 roles A,S,A,S: reversal maps roles to S,A,S,A — only
        // the identity survives.
        assert_eq!(path4(Policy::ReVerify).symmetries().len(), 1);
        // Cycle n=4 roles A,S,A,S: rotation by 2 and both diagonal
        // reflections survive.
        let c4 = Instance::new(Topology::Cycle, 4, 1, Policy::ReVerify).unwrap();
        assert_eq!(c4.symmetries().len(), 4);
        // Cycle n=3 roles A,S,S: the reflection fixing node 0 survives.
        let c3 = Instance::new(Topology::Cycle, 3, 1, Policy::ReVerify).unwrap();
        assert_eq!(c3.symmetries().len(), 2);
    }

    #[test]
    fn canonical_key_identifies_symmetric_states() {
        let c4 = Instance::new(Topology::Cycle, 4, 1, Policy::ReVerify).unwrap();
        let syms = c4.symmetries();
        let s0 = c4.apply(&c4.initial(), Action::Crash(0)).0;
        let s2 = c4.apply(&c4.initial(), Action::Crash(2)).0;
        assert_ne!(s0.encode(), s2.encode());
        assert_eq!(c4.canonical_key(&s0, &syms), c4.canonical_key(&s2, &syms));
    }
}
