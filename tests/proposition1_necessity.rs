//! Proposition 1, necessity side: the paper notes that `γ ≤ 2·sin(π/τ)` is
//! "also a necessary condition for worst-case instances". We build the
//! worst-case embedding — a regular τ-gon with every link stretched to the
//! full `Rc` — and check with the geometric verifier that the centre is
//! uncovered exactly when γ exceeds the threshold.

use confine::core::config::blanket_ratio_threshold;
use confine::deploy::coverage::verify_coverage;
use confine::deploy::{Point, Rect};
use confine::graph::NodeId;

/// Positions of a regular τ-gon whose side length is exactly `rc`.
fn tau_gon(tau: usize, rc: f64) -> Vec<Point> {
    // Side s = 2 R sin(π/τ) ⇒ R = rc / (2 sin(π/τ)).
    let r = rc / (2.0 * (std::f64::consts::PI / tau as f64).sin());
    (0..tau)
        .map(|i| {
            let t = std::f64::consts::TAU * i as f64 / tau as f64;
            Point::new(r * t.cos(), r * t.sin())
        })
        .collect()
}

#[test]
fn threshold_is_tight_on_regular_tau_gons() {
    let rc = 1.0;
    for tau in 3..=9usize {
        let positions = tau_gon(tau, rc);
        let active: Vec<NodeId> = (0..tau).map(NodeId::from).collect();
        let threshold = blanket_ratio_threshold(tau);
        // Sample a small target around the polygon centre.
        let target = Rect::new(-0.05, -0.05, 0.05, 0.05);

        // γ just below the threshold ⇒ Rs just above the circumradius:
        // the centre is covered.
        let gamma_ok = threshold * 0.98;
        let report = verify_coverage(&positions, &active, rc / gamma_ok, target, 0.01);
        assert!(
            report.is_blanket(),
            "τ = {tau}: γ = {gamma_ok:.3} below the threshold must cover the centre"
        );

        // γ just above the threshold ⇒ the centre escapes every sensing
        // disk: the worst-case τ-cycle leaks.
        let gamma_bad = threshold * 1.02;
        let report = verify_coverage(&positions, &active, rc / gamma_bad, target, 0.01);
        assert!(
            !report.is_blanket(),
            "τ = {tau}: γ = {gamma_bad:.3} above the threshold must leak at the centre"
        );
    }
}

#[test]
fn partial_bound_is_respected_on_stretched_cycles() {
    // A stretched τ-gon's uncovered pocket always stays within the
    // Proposition 1 bound (τ−2)·Rc — by a wide margin for regular polygons.
    let rc = 1.0;
    for tau in 4..=10usize {
        let positions = tau_gon(tau, rc);
        let active: Vec<NodeId> = (0..tau).map(NodeId::from).collect();
        let gamma = 2.0; // the largest ratio the paper admits
        let r = rc / (2.0 * (std::f64::consts::PI / tau as f64).sin());
        let target = Rect::new(-r, -r, r, r);
        let report = verify_coverage(&positions, &active, rc / gamma, target, 0.02);
        let bound = (tau as f64 - 2.0) * rc;
        assert!(
            report.max_hole_diameter() <= bound + 0.1,
            "τ = {tau}: hole {} exceeds the bound {bound}",
            report.max_hole_diameter()
        );
    }
}
