//! Cross-crate reproduction of the paper's Fig. 1 discussion: the
//! Möbius-band network separates the homology criterion (HGC) from the
//! cycle-partition criterion (DCC).

use confine::complex::{homology, rips};
use confine::core::moebius::{moebius_band, INNER, OUTER};
use confine::cycles::partition::PartitionTester;
use confine::cycles::{space, Cycle};
use confine::hgc::criterion::{absolute_b1, hgc_criterion_holds};

#[test]
fn moebius_band_is_a_surface_with_chi_zero() {
    let band = moebius_band();
    let k = rips::rips_complex(&band.graph);
    assert_eq!(k.vertex_count(), OUTER + INNER);
    assert_eq!(k.edge_count(), 28);
    assert_eq!(k.triangle_count(), 16);
    assert_eq!(k.euler_characteristic(), 0, "Möbius band has χ = 0");
    // Every spoke and inner edge is interior (shared by 2 triangles);
    // exactly the 8 outer edges lie on one triangle each.
    let mut edge_use = std::collections::HashMap::new();
    for &[a, b, c] in k.triangles() {
        for (x, y) in [(a, b), (a, c), (b, c)] {
            *edge_use.entry((x, y)).or_insert(0usize) += 1;
        }
    }
    let boundary_edges = edge_use.values().filter(|&&c| c == 1).count();
    assert_eq!(boundary_edges, 8, "one boundary circle of length 8");
    assert!(
        edge_use.values().all(|&c| c <= 2),
        "a surface: at most 2 triangles per edge"
    );
}

#[test]
fn hgc_reports_a_false_hole() {
    let band = moebius_band();
    let k = rips::rips_complex(&band.graph);
    assert_eq!(
        homology::betti_numbers(&k),
        [1, 1, 0],
        "connected, one 1-dimensional hole class, no 2-cycles"
    );
    assert_eq!(absolute_b1(&band.graph), 1);
    assert!(
        !hgc_criterion_holds(&band.graph),
        "HGC wrongly reports a coverage hole on a fully covered network"
    );
}

#[test]
fn cycle_partition_certifies_coverage() {
    let band = moebius_band();
    let outer = Cycle::from_vertex_cycle(&band.graph, &band.outer_cycle).unwrap();
    let tester = PartitionTester::new(&band.graph);
    assert_eq!(tester.min_partition_tau(outer.edge_vec()), Some(3));

    // The explicit partition is exactly a triangle set summing to the
    // boundary.
    let parts = tester.partition(outer.edge_vec()).unwrap();
    let mut sum = Cycle::zero(&band.graph);
    for p in &parts {
        assert_eq!(p.len(), 3);
        sum = sum.sum(p);
    }
    assert_eq!(sum, outer);
}

#[test]
fn the_central_circle_is_the_obstruction() {
    let band = moebius_band();
    let inner = Cycle::from_vertex_cycle(&band.graph, &band.inner_cycle).unwrap();
    let tester = PartitionTester::new(&band.graph);
    // The inner circle is irreducible (not a sum of triangles): HGC's
    // homology sees it; DCC's boundary-only criterion does not care.
    assert_eq!(tester.min_partition_tau(inner.edge_vec()), Some(4));
    // Dimension check: cycle space has rank m − n + 1 = 17; triangles span
    // a rank-16 subspace (rank ∂2 of the Rips complex = 16).
    assert_eq!(space::circuit_rank(&band.graph), 17);
    let k = rips::rips_complex(&band.graph);
    let r2 = homology::boundary_2(&k).rank();
    assert_eq!(
        r2, 16,
        "all 16 triangle boundaries are independent (their sum is the outer cycle, not zero)"
    );
}

#[test]
fn moebius_has_no_redundant_node_for_dcc() {
    // Every node of the band sits on the boundary or is needed for the
    // triangles: DCC with the outer ring as the protected boundary keeps the
    // inner circle too (deleting any inner node would leave cycles longer
    // than 3 around its hole).
    let band = moebius_band();
    let mut boundary = vec![false; band.graph.node_count()];
    for &v in &band.outer_cycle {
        boundary[v.index()] = true;
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let set = confine::core::Dcc::builder(3)
        .centralized()
        .expect("valid tau")
        .run(&band.graph, &boundary, &mut rng)
        .expect("valid inputs");
    assert_eq!(set.active_count(), 12, "nothing can sleep at τ = 3");
}
