//! DCC vs HGC on structured topologies: agreement where both are right,
//! and DCC's strictly better granularity where HGC wastes nodes.

use confine::core::Dcc;
use confine::cycles::partition::is_tau_partitionable;
use confine::cycles::Cycle;
use confine::graph::{generators, NodeId};
use confine::hgc::criterion::{hgc_criterion_holds, hgc_holds_on_active};
use confine::hgc::HgcScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring_fence(w: usize, h: usize) -> Vec<bool> {
    (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            x == 0 || y == 0 || x == w - 1 || y == h - 1
        })
        .collect()
}

fn grid_outer_cycle(g: &confine::graph::Graph, w: usize, h: usize) -> Cycle {
    let mut seq = Vec::new();
    for x in 0..w {
        seq.push(NodeId::from(x));
    }
    for y in 1..h {
        seq.push(NodeId::from(y * w + (w - 1)));
    }
    for x in (0..w - 1).rev() {
        seq.push(NodeId::from((h - 1) * w + x));
    }
    for y in (1..h - 1).rev() {
        seq.push(NodeId::from(y * w));
    }
    Cycle::from_vertex_cycle(g, &seq).expect("grid rim is a cycle")
}

#[test]
fn both_criteria_accept_a_triangulated_disk() {
    let g = generators::king_grid_graph(6, 6);
    assert!(hgc_criterion_holds(&g));
    let outer = grid_outer_cycle(&g, 6, 6);
    assert!(is_tau_partitionable(&g, outer.edge_vec(), 3));
}

#[test]
fn both_criteria_reject_a_genuine_hole() {
    // Plain grid: the unit squares are hollow.
    let g = generators::grid_graph(6, 6);
    assert!(!hgc_criterion_holds(&g));
    let outer = grid_outer_cycle(&g, 6, 6);
    assert!(!is_tau_partitionable(&g, outer.edge_vec(), 3));
    // But DCC accepts at τ = 4 — the squares are fine cells; HGC cannot say
    // this at all.
    assert!(is_tau_partitionable(&g, outer.edge_vec(), 4));
}

#[test]
fn dcc_at_tau3_and_hgc_keep_comparable_sets() {
    // On a doubly-hubbed ring both schedulers must drop exactly one hub.
    let mut g = generators::cycle_graph(8);
    let hubs = [g.add_node(), g.add_node()];
    for hub in hubs {
        for i in 0..8 {
            g.add_edge(hub, NodeId::from(i)).unwrap();
        }
    }
    let mut fence = vec![true; 10];
    fence[8] = false;
    fence[9] = false;

    let mut rng = StdRng::seed_from_u64(3);
    let hgc = HgcScheduler::new().schedule(&g, &fence, &mut rng);
    assert!(hgc.initial_ok);
    assert_eq!(hgc.deleted.len(), 1);

    let mut rng = StdRng::seed_from_u64(3);
    let dcc = Dcc::builder(3)
        .centralized()
        .expect("valid tau")
        .run(&g, &fence, &mut rng)
        .expect("valid inputs");
    assert_eq!(dcc.deleted.len(), 1);
    assert_eq!(dcc.active_count(), hgc.active_count());
}

#[test]
fn dcc_with_larger_tau_beats_hgc_on_the_wheel() {
    // Wheel with an 8-ring: HGC must keep the hub (removing it opens the
    // ring); DCC at τ = 8 sleeps it.
    let g = generators::wheel_graph(8);
    let mut fence = vec![false; 9];
    for f in fence.iter_mut().skip(1) {
        *f = true;
    }
    let mut rng = StdRng::seed_from_u64(5);
    let hgc = HgcScheduler::new().schedule(&g, &fence, &mut rng);
    assert!(hgc.initial_ok);
    assert_eq!(hgc.active_count(), 9, "HGC cannot give up the hub");

    let dcc = Dcc::builder(8)
        .centralized()
        .expect("valid tau")
        .run(&g, &fence, &mut StdRng::seed_from_u64(5))
        .expect("valid inputs");
    assert_eq!(dcc.active_count(), 8, "8-confine coverage drops the hub");
}

#[test]
fn hgc_scheduler_result_still_passes_its_criterion() {
    let g = generators::king_grid_graph(5, 5);
    // Add a few redundant chords to give the scheduler something to delete.
    let mut g = g;
    for (a, b) in [(0usize, 12usize), (4, 12), (20, 12), (24, 12)] {
        let _ = g.add_edge(NodeId::from(a), NodeId::from(b));
    }
    let fence = ring_fence(5, 5);
    let mut rng = StdRng::seed_from_u64(11);
    let set = HgcScheduler::new().schedule(&g, &fence, &mut rng);
    assert!(set.initial_ok);
    assert!(hgc_holds_on_active(&g, &set.active));
}
