//! Proposition 3 end to end: a multiply-connected target area (a deployment
//! with a forbidden courtyard), inner-boundary detection, coning, DCC
//! scheduling and verification.
//!
//! Two subtleties of the construction are deliberately exercised:
//!
//! * Theorem 5 preserves only what initially holds, so the schedule runs at
//!   the coned network's *measured* initial partition τ, not a wished-for
//!   value;
//! * cycles through the virtual apex are fictitious coverage, so the
//!   geometric guarantee applies outside a collar of ≈ `⌈τ/2⌉·Rc + Rs`
//!   around the repaired boundary (plus the courtyard itself, which is the
//!   point of the exemption).

use confine::core::schedule::is_vpt_fixpoint;
use confine::core::verify::{boundary_partition_tau, cone_inner_boundaries};
use confine::core::Dcc;
use confine::deploy::coverage::verify_coverage;
use confine::deploy::deployment::{perturbed_grid, Deployment};
use confine::deploy::outer::extract_outer_walk;
use confine::deploy::{CommModel, Point, Rect, Scenario};
use confine::graph::{traverse, Masked, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Donut {
    scenario: Scenario, // coned graph with the apex placed at the hole centre
    apex: NodeId,
    protected: Vec<bool>,
    inner_ring: Vec<NodeId>,
    hole: Rect,
}

/// A dense deployment around a rectangular courtyard, with geometric
/// boundary detection for both boundaries, coned and packaged as a scenario
/// (the apex gets the hole centre as its nominal position).
fn donut(seed: u64) -> Donut {
    let region = Rect::new(0.0, 0.0, 14.0, 14.0);
    let hole = Rect::new(6.0, 6.0, 8.0, 8.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // A lightly perturbed grid with 0.6 spacing: a UDG of range 1 keeps the
    // diagonals, so the network is richly triangulated and its initial
    // partition τ stays small — the regime where the theorems bite hard.
    let lattice = perturbed_grid(24, 24, region, 0.08, &mut rng);
    let positions: Vec<Point> = lattice
        .positions
        .into_iter()
        .filter(|p| !hole.contains(*p))
        .collect();
    let dep = Deployment { positions, region };
    let graph = CommModel::Udg { rc: 1.0 }.build(&dep, &mut rng);

    // Grow the outer band until a certified boundary walk exists (the same
    // approach as the scenario builder; sparse bands can carry cracks).
    let mut outer_band = 0.7;
    let mut outer_flags: Vec<bool> = dep
        .positions
        .iter()
        .map(|&p| region.rim_distance(p) <= outer_band)
        .collect();
    loop {
        let probe = Scenario {
            graph: graph.clone(),
            positions: dep.positions.clone(),
            rc: 1.0,
            boundary: outer_flags.clone(),
            region,
            target: region.shrunk(2.5),
        };
        if extract_outer_walk(&probe).is_some() || outer_band > 3.0 {
            break;
        }
        outer_band *= 1.25;
        outer_flags = dep
            .positions
            .iter()
            .map(|&p| region.rim_distance(p) <= outer_band)
            .collect();
    }
    let inner_ring: Vec<NodeId> = graph
        .nodes()
        .filter(|v| {
            let p = dep.positions[v.index()];
            let dx = (hole.min.x - p.x).max(p.x - hole.max.x).max(0.0);
            let dy = (hole.min.y - p.y).max(p.y - hole.max.y).max(0.0);
            (dx * dx + dy * dy).sqrt() <= 0.6 && !hole.contains(p)
        })
        .collect();

    let coned = cone_inner_boundaries(&graph, &outer_flags, std::slice::from_ref(&inner_ring))
        .expect("ring exists");
    let apex = coned.apexes[0];

    let mut positions = dep.positions.clone();
    positions.push(Point::new(6.0, 6.0)); // nominal apex position (hole centre)
    let mut boundary = outer_flags.clone();
    boundary.push(false); // the apex is not an outer-boundary node

    let scenario = Scenario {
        graph: coned.graph.clone(),
        positions,
        rc: 1.0,
        boundary,
        region,
        // Target used only for boundary-walk certification.
        target: region.shrunk(2.5),
    };
    Donut {
        scenario,
        apex,
        protected: coned.protected,
        inner_ring,
        hole,
    }
}

#[test]
fn coned_donut_schedules_and_covers() {
    let d = donut(77);
    assert!(
        d.inner_ring.len() >= 8,
        "courtyard ring found ({})",
        d.inner_ring.len()
    );

    // The paper's assumption: each boundary's induced graph is connected.
    let ring_view = Masked::from_active(&d.scenario.graph, &d.inner_ring);
    assert!(
        traverse::is_connected(&ring_view),
        "inner boundary must be connected"
    );

    // Theorem 5 premise: measure what the coned network initially satisfies.
    let walk = extract_outer_walk(&d.scenario).expect("certified outer walk");
    let all: Vec<NodeId> = d.scenario.graph.nodes().collect();
    // τ = 4 at minimum: on a triangulated lattice the 3-confine fixpoint is
    // the lattice itself (every deletion would open a quad hole), so the
    // interesting regime starts one notch up.
    let tau = boundary_partition_tau(&d.scenario, &walk, &all)
        .expect("boundary in cycle space")
        .max(4);
    let k = tau.div_ceil(2) as f64;

    let mut rng = StdRng::seed_from_u64(9);
    let set = Dcc::builder(tau)
        .centralized()
        .expect("valid tau")
        .run(&d.scenario.graph, &d.protected, &mut rng)
        .expect("valid inputs");
    assert!(is_vpt_fixpoint(
        &d.scenario.graph,
        &set.active,
        &d.protected,
        tau
    ));
    assert!(set.active.contains(&d.apex));
    for v in &d.inner_ring {
        assert!(set.active.contains(v), "repaired boundary node {v:?} slept");
    }
    assert!(
        !set.deleted.is_empty(),
        "the annulus interior has redundancy to exploit"
    );

    // The criterion still holds after scheduling (Theorem 5 on the coned
    // graph).
    let min_tau_after = boundary_partition_tau(&d.scenario, &walk, &set.active);
    assert!(
        min_tau_after.is_some_and(|t| t <= tau),
        "partitionability lost: {min_tau_after:?} vs τ = {tau}"
    );

    // Geometric check outside the apex-contamination collar: real sensors
    // must blanket-cover everything farther than k·Rc + Rs + ring width
    // from the courtyard (γ = 1) and at least 1 inside the outer rim.
    let rs = 1.0;
    let collar = k * d.scenario.rc + rs + 0.6;
    let lo = d.hole.min.y - collar; // bands must end below/left of this
    assert!(lo > 1.5, "region too small for the collar {collar}");
    let real_nodes: Vec<NodeId> = set
        .active
        .iter()
        .copied()
        .filter(|&v| v != d.apex)
        .collect();
    let side = d.scenario.region.width();
    let hi = d.hole.max.y + collar; // bands must start above/right of this
    let bands = [
        Rect::new(1.0, 1.0, side - 1.0, lo),        // south
        Rect::new(1.0, hi, side - 1.0, side - 1.0), // north
        Rect::new(1.0, 1.0, lo, side - 1.0),        // west
        Rect::new(hi, 1.0, side - 1.0, side - 1.0), // east
    ];
    for target in bands {
        if target.width() <= 0.2 || target.height() <= 0.2 {
            continue;
        }
        let report = verify_coverage(&d.scenario.positions, &real_nodes, rs, target, 0.1);
        assert!(
            report.is_blanket(),
            "band {target:?} leaks (τ = {tau}): max hole {}",
            report.max_hole_diameter()
        );
    }
}

#[test]
fn scheduling_without_coning_lets_ring_nodes_sleep() {
    // Without the repair, nodes around the courtyard are unprotected: the
    // coned run pins the whole ring awake, the plain run thins it.
    let d = donut(78);
    let mut rng = StdRng::seed_from_u64(4);
    let with_cone = Dcc::builder(4)
        .centralized()
        .expect("valid tau")
        .run(&d.scenario.graph, &d.protected, &mut rng)
        .expect("valid inputs");

    // Plain graph = coned graph without the apex: rebuild from the scenario
    // by masking the apex out and re-running on the original outer flags.
    let plain_boundary: Vec<bool> = d.scenario.boundary[..d.scenario.boundary.len() - 1].to_vec();
    let plain_nodes: Vec<NodeId> = d.scenario.graph.nodes().filter(|&v| v != d.apex).collect();
    let masked = Masked::from_active(&d.scenario.graph, &plain_nodes);
    let induced = masked.to_induced();
    let plain = Dcc::builder(4)
        .centralized()
        .expect("valid tau")
        .run(&induced.graph, &plain_boundary, &mut rng)
        .expect("valid inputs");

    let ring_awake_coned = d
        .inner_ring
        .iter()
        .filter(|v| with_cone.active.contains(v))
        .count();
    let plain_active_parents: Vec<NodeId> =
        plain.active.iter().map(|&c| induced.to_parent(c)).collect();
    let ring_awake_plain = d
        .inner_ring
        .iter()
        .filter(|v| plain_active_parents.contains(v))
        .count();
    assert_eq!(
        ring_awake_coned,
        d.inner_ring.len(),
        "coning pins the whole ring awake"
    );
    assert!(
        ring_awake_plain < d.inner_ring.len(),
        "without coning some ring nodes sleep ({ring_awake_plain}/{})",
        d.inner_ring.len()
    );
}
