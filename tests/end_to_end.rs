//! End-to-end integration: random deployments → DCC scheduling → exact
//! criterion verification (Theorem 5) → geometric verification
//! (Proposition 1), plus distributed/centralized agreement.

use confine::core::config::{best_tau_for_requirement, blanket_ratio_threshold};
use confine::core::schedule::{is_vpt_fixpoint, DeletionOrder};
use confine::core::verify::{boundary_partition_tau, verify_criterion, CriterionOutcome};
use confine::core::Dcc;
use confine::deploy::coverage::verify_coverage;
use confine::deploy::outer::extract_outer_walk;
use confine::deploy::scenario::random_udg_scenario;
use confine::graph::{traverse, Masked};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(seed: u64) -> confine::deploy::Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    random_udg_scenario(300, 1.0, 22.0, &mut rng)
}

#[test]
fn theorem5_partitionability_is_preserved_by_scheduling() {
    let s = scenario(31);
    let walk = extract_outer_walk(&s).expect("certified boundary walk");
    let all: Vec<_> = s.graph.nodes().collect();
    let initial_tau =
        boundary_partition_tau(&s, &walk, &all).expect("boundary is in the cycle space");
    for tau in [initial_tau, initial_tau + 2] {
        let mut rng = StdRng::seed_from_u64(7 + tau as u64);
        let set = Dcc::builder(tau)
            .centralized()
            .expect("valid tau")
            .run(&s.graph, &s.boundary, &mut rng)
            .expect("valid inputs");
        assert_eq!(
            verify_criterion(&s, &set.active, tau),
            CriterionOutcome::Satisfied,
            "tau {tau}: the schedule must keep the boundary τ-partitionable"
        );
    }
}

#[test]
fn schedules_reach_fixpoints_and_stay_connected() {
    let s = scenario(32);
    for tau in [3usize, 5] {
        let mut rng = StdRng::seed_from_u64(tau as u64);
        let set = Dcc::builder(tau)
            .centralized()
            .expect("valid tau")
            .run(&s.graph, &s.boundary, &mut rng)
            .expect("valid inputs");
        assert!(is_vpt_fixpoint(&s.graph, &set.active, &s.boundary, tau));
        let masked = Masked::from_active(&s.graph, &set.active);
        assert!(
            traverse::is_connected(&masked),
            "tau {tau}: coverage set disconnected"
        );
        assert_eq!(set.active_count() + set.deleted.len(), s.graph.node_count());
    }
}

#[test]
fn proposition1_blanket_coverage_holds_geometrically() {
    let s = scenario(33);
    // γ = 1 ⇒ blanket guaranteed up to τ = 6.
    let gamma = 1.0;
    let tau = best_tau_for_requirement(gamma, s.rc, 0.0).unwrap();
    assert_eq!(tau, 6);
    let mut rng = StdRng::seed_from_u64(9);
    let set = Dcc::builder(tau)
        .centralized()
        .expect("valid tau")
        .run(&s.graph, &s.boundary, &mut rng)
        .expect("valid inputs");
    let report = verify_coverage(&s.positions, &set.active, s.rc / gamma, s.target, 0.08);
    assert!(
        report.is_blanket(),
        "γ ≤ 2 sin(π/τ) must blanket-cover; found hole of diameter {}",
        report.max_hole_diameter()
    );
}

#[test]
fn proposition1_partial_coverage_hole_bound_holds() {
    let s = scenario(34);
    // γ = 1.9: triangles cannot blanket; τ = 5 bounds holes by 3·Rc.
    let gamma = 1.9;
    let tau = 5usize;
    assert!(gamma > blanket_ratio_threshold(tau));
    let mut rng = StdRng::seed_from_u64(11);
    let set = Dcc::builder(tau)
        .centralized()
        .expect("valid tau")
        .run(&s.graph, &s.boundary, &mut rng)
        .expect("valid inputs");
    let report = verify_coverage(&s.positions, &set.active, s.rc / gamma, s.target, 0.08);
    let bound = (tau as f64 - 2.0) * s.rc;
    assert!(
        report.max_hole_diameter() <= bound + 0.15,
        "hole {} exceeds the Proposition 1 bound {}",
        report.max_hole_diameter(),
        bound
    );
}

#[test]
fn larger_tau_gives_sparser_sets() {
    let s = scenario(35);
    let mut sizes = Vec::new();
    for tau in [3usize, 4, 6] {
        let mut rng = StdRng::seed_from_u64(42);
        let set = Dcc::builder(tau)
            .centralized()
            .expect("valid tau")
            .run(&s.graph, &s.boundary, &mut rng)
            .expect("valid inputs");
        sizes.push(set.active_count());
    }
    assert!(
        sizes[1] <= sizes[0] && sizes[2] <= sizes[1],
        "sizes {sizes:?} not monotone"
    );
    assert!(
        sizes[2] < sizes[0],
        "τ = 6 must actually save nodes over τ = 3"
    );
}

#[test]
fn distributed_run_matches_centralized_fixpoint() {
    let mut rng = StdRng::seed_from_u64(77);
    let s = random_udg_scenario(150, 1.0, 16.0, &mut rng);
    let tau = 4;
    let (dist, stats) = Dcc::builder(tau)
        .distributed()
        .expect("valid tau")
        .run(&s.graph, &s.boundary, &mut rng)
        .expect("protocol converges");
    assert!(is_vpt_fixpoint(&s.graph, &dist.active, &s.boundary, tau));
    assert!(stats.discovery_messages > 0 && stats.comm_rounds > 0);
    let central = Dcc::builder(tau)
        .centralized()
        .expect("valid tau")
        .run(&s.graph, &s.boundary, &mut StdRng::seed_from_u64(77))
        .expect("valid inputs");
    // Both are fixpoints of the same transformation; sizes agree closely.
    let diff = dist.active_count().abs_diff(central.active_count());
    assert!(
        diff * 20 <= s.graph.node_count(),
        "distributed {} vs centralized {} too far apart",
        dist.active_count(),
        central.active_count()
    );
}

#[test]
fn sequential_order_is_a_valid_ablation() {
    let s = scenario(36);
    // Theorem 5 preserves whatever τ-partitionability the *initial* network
    // has, so anchor on the initial value (random deployments occasionally
    // carry a quad/penta hole that makes it larger than 3).
    let walk = extract_outer_walk(&s).expect("certified boundary walk");
    let all: Vec<_> = s.graph.nodes().collect();
    let tau = boundary_partition_tau(&s, &walk, &all).expect("boundary in cycle space");
    let mut rng = StdRng::seed_from_u64(5);
    let seq = Dcc::builder(tau)
        .order(DeletionOrder::Sequential)
        .centralized()
        .expect("valid tau")
        .run(&s.graph, &s.boundary, &mut rng)
        .expect("valid inputs");
    assert!(is_vpt_fixpoint(&s.graph, &seq.active, &s.boundary, tau));
    assert_eq!(
        verify_criterion(&s, &seq.active, tau),
        CriterionOutcome::Satisfied,
        "sequential deletions preserve the criterion too (tau = {tau})"
    );
}

#[test]
fn boundary_nodes_always_survive() {
    let s = scenario(37);
    let mut rng = StdRng::seed_from_u64(13);
    let set = Dcc::builder(5)
        .centralized()
        .expect("valid tau")
        .run(&s.graph, &s.boundary, &mut rng)
        .expect("valid inputs");
    for v in s.boundary_nodes() {
        assert!(set.active.contains(&v), "boundary node {v:?} was deleted");
    }
}
