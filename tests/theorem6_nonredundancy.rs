//! Theorem 6: when the maximum irreducible cycle of the input graph is
//! bounded by τ, the coverage set found by DCC is **non-redundant** — no
//! single further node can be removed without losing τ-partitionability of
//! the boundary.

use confine::core::verify::{boundary_partition_tau, verify_criterion, CriterionOutcome};
use confine::core::Dcc;
use confine::cycles::horton::irreducible_cycle_bounds;
use confine::deploy::outer::extract_outer_walk;
use confine::deploy::scenario::random_udg_scenario;
use confine::graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn theorem6_no_single_node_is_redundant() {
    let mut rng = StdRng::seed_from_u64(63);
    let scenario = random_udg_scenario(180, 1.0, 20.0, &mut rng);
    let walk = extract_outer_walk(&scenario).expect("certified boundary walk");
    let all: Vec<NodeId> = scenario.graph.nodes().collect();
    let initial_tau =
        boundary_partition_tau(&scenario, &walk, &all).expect("boundary in cycle space");
    // Theorem 6's hypothesis: the maximum irreducible cycle of G is ≤ τ.
    let max_irr = irreducible_cycle_bounds(&scenario.graph)
        .expect("graph has cycles")
        .max;
    let tau = initial_tau.max(max_irr);

    let set = Dcc::builder(tau)
        .centralized()
        .expect("valid tau")
        .run(
            &scenario.graph,
            &scenario.boundary,
            &mut StdRng::seed_from_u64(5),
        )
        .expect("valid inputs");
    assert_eq!(
        verify_criterion(&scenario, &set.active, tau),
        CriterionOutcome::Satisfied,
        "Theorem 5 precondition"
    );

    // Removing ANY single remaining internal node must break the criterion.
    let internals: Vec<NodeId> = set
        .active
        .iter()
        .copied()
        .filter(|v| !scenario.boundary[v.index()])
        .collect();
    assert!(
        !internals.is_empty(),
        "degenerate instance: nothing internal survived"
    );
    for &v in &internals {
        let without: Vec<NodeId> = set.active.iter().copied().filter(|&w| w != v).collect();
        let min_tau = boundary_partition_tau(&scenario, &walk, &without);
        assert!(
            min_tau.is_none_or(|t| t > tau),
            "removing {v:?} left the boundary {min_tau:?}-partitionable — the set was redundant"
        );
    }
}
