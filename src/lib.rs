//! `confine` — distributed, connectivity-only coverage for wireless ad hoc
//! and sensor networks, by topological graph approaches.
//!
//! This is the facade crate of the workspace reproducing *"Distributed
//! Coverage in Wireless Ad Hoc and Sensor Networks by Topological Graph
//! Approaches"* (Dong, Liu, Liu, Liao — ICDCS 2010). It re-exports every
//! subsystem under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `confine-graph` | graph substrate: storage, traversal, SPT/LCA, m-hop MIS |
//! | [`cycles`] | `confine-cycles` | GF(2) cycle spaces, Horton MCB (Algorithm 1), τ-partitionability |
//! | [`complex`] | `confine-complex` | simplicial 2-complexes and GF(2) homology |
//! | [`deploy`] | `confine-deploy` | deployments, radio models, GreenOrbs-style traces, geometric verification |
//! | [`netsim`] | `confine-netsim` | synchronous message-passing simulator |
//! | [`core`] | `confine-core` | **the paper's contribution**: confine coverage, VPT, DCC schedulers |
//! | [`hgc`] | `confine-hgc` | the homology-group coverage baseline (Ghrist et al.) |
//!
//! # Quick start
//!
//! Build a random sensor network, pick the sparsest confine size that still
//! guarantees blanket coverage for the application's sensing ratio, schedule
//! with DCC, and verify the result geometrically:
//!
//! ```
//! use confine::core::config::best_tau_for_requirement;
//! use confine::core::Dcc;
//! use confine::deploy::coverage::verify_coverage;
//! use confine::deploy::scenario::random_udg_scenario;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let scenario = random_udg_scenario(400, 1.0, 20.0, &mut rng);
//!
//! // Application: sensing range Rs = Rc (γ = 1), blanket coverage needed.
//! let tau = best_tau_for_requirement(1.0, scenario.rc, 0.0).expect("γ ≤ √3");
//! let set = Dcc::builder(tau)
//!     .centralized()
//!     .expect("valid tau")
//!     .run(&scenario.graph, &scenario.boundary, &mut rng)
//!     .expect("valid inputs");
//! assert!(set.active_count() < 400);
//!
//! // Ground truth check with the simulator's hidden coordinates.
//! let report = verify_coverage(
//!     &scenario.positions,
//!     &set.active,
//!     scenario.rc / 1.0, // Rs = Rc / γ
//!     scenario.target,
//!     0.2,
//! );
//! assert!(report.covered_fraction > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use confine_complex as complex;
pub use confine_core as core;
pub use confine_cycles as cycles;
pub use confine_deploy as deploy;
pub use confine_graph as graph;
pub use confine_hgc as hgc;
pub use confine_netsim as netsim;
